//! Measure the model's machine-dependent inputs on the running build.
//!
//! The paper measures `Tprec`, `Tcomp`, the compression ratios and the
//! compressible fractions on Jaguar's Opterons; here they are measured on
//! the host machine with the same code paths the benchmarks exercise, then
//! fed to both the analytical model and the cluster simulator.

use crate::model::ModelInputs;
use primacy_codecs::Codec;
use primacy_core::{PrimacyCompressor, PrimacyConfig, PrimacyError, Result};
use std::time::Instant;

/// Machine-measured rates and ratios for one (data, method) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRates {
    /// Preconditioner throughput, bytes/s (forward direction).
    pub t_prec: f64,
    /// Backend compressor throughput over the bytes it actually touched.
    pub t_comp: f64,
    /// Decompression-side codec throughput.
    pub t_decomp: f64,
    /// Inverse-preconditioner throughput.
    pub t_prec_inv: f64,
    /// Compressed/original ratio on the high-order section (σho), including
    /// the index metadata.
    pub sigma_ho: f64,
    /// Compressed/original ratio on the compressible low-order bytes (σlo).
    pub sigma_lo: f64,
    /// Fraction of the chunk routed through the ID mapper (α1).
    pub alpha1: f64,
    /// Compressible fraction of the low-order bytes (α2).
    pub alpha2: f64,
    /// Whole-pipeline compression ratio (original/compressed).
    pub ratio: f64,
    /// Whole-pipeline compression throughput, bytes/s.
    pub compress_bps: f64,
    /// Whole-pipeline decompression throughput, bytes/s.
    pub decompress_bps: f64,
}

/// Run the PRIMACY pipeline over `bytes` once and extract model inputs.
///
/// Errors propagate from the pipeline itself: invalid measurement input
/// surfaces as the same [`PrimacyError`] the production path would return.
pub fn measure_primacy(config: &PrimacyConfig, bytes: &[u8]) -> Result<MeasuredRates> {
    let compressor = PrimacyCompressor::new(config.clone());
    let t0 = Instant::now();
    let (compressed, stats) = compressor.compress_bytes_with_stats(bytes)?;
    let compress_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (restored, dec_stats) = compressor.decompress_bytes_with_stats(&compressed)?;
    let decompress_secs = t0.elapsed().as_secs_f64();
    if restored.len() != bytes.len() {
        return Err(PrimacyError::Format("round trip changed the byte count"));
    }

    let alpha1 = config.hi_bytes as f64 / config.element_size as f64;
    let alpha2 = stats.isobar_compressible_fraction;

    // Section ratios: approximate σho from the overall split. The container
    // interleaves sections per chunk, so recover them by re-running the
    // codec on representative sections would double-measure; instead derive
    // them from the aggregate accounting: compressed = σho·α1·N +
    // σlo·α2·(1−α1)·N + (1−α2)(1−α1)·N + δ. We attribute the ID-side ratio
    // directly by compressing one chunk's hi section, which is cheap.
    let (sigma_ho, sigma_lo) = section_ratios(config, bytes)?;

    let prec_secs = stats.timings.preconditioner().as_secs_f64();
    let codec_secs = stats.timings.codec.as_secs_f64();
    // Decode-side attribution from the measured per-stage timings: codec
    // time is the decompressor proper, everything else is the inverse
    // preconditioner (delinearize, ID decode, unpartition, rejoin).
    let dec_codec_secs = dec_stats.timings.codec.as_secs_f64().max(1e-9);
    let dec_prec_secs = (decompress_secs - dec_codec_secs).max(1e-9);
    let n = bytes.len().max(1) as f64;
    Ok(MeasuredRates {
        t_prec: rate(n, prec_secs),
        t_comp: rate(codec_touched_bytes(alpha1, alpha2, n), codec_secs),
        t_decomp: rate(codec_touched_bytes(alpha1, alpha2, n), dec_codec_secs),
        t_prec_inv: rate(n, dec_prec_secs),
        sigma_ho,
        sigma_lo,
        alpha1,
        alpha2,
        ratio: stats.ratio(),
        compress_bps: rate(n, compress_secs),
        decompress_bps: rate(n, decompress_secs),
    })
}

/// Bytes the backend codec actually processes under the ISOBAR partition.
fn codec_touched_bytes(alpha1: f64, alpha2: f64, n: f64) -> f64 {
    (alpha1 + alpha2 * (1.0 - alpha1)) * n
}

fn rate(bytes: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        f64::INFINITY
    } else {
        bytes / secs
    }
}

/// Compress one chunk's high and low sections separately to estimate σho
/// and σlo.
fn section_ratios(config: &PrimacyConfig, bytes: &[u8]) -> Result<(f64, f64)> {
    use primacy_core::{freq::FreqTable, idmap::IdMap, isobar, linearize, split};
    let chunk_len = (config.chunk_elements() * config.element_size).min(bytes.len());
    let chunk = &bytes[..chunk_len - chunk_len % config.element_size];
    if chunk.is_empty() {
        return Ok((1.0, 1.0));
    }
    let codec = config.codec.build();
    let (mut hi, lo) = split::split_hi_lo(chunk, config.element_size, config.hi_bytes)?;
    let n = chunk.len() / config.element_size;
    let freq = FreqTable::from_hi_matrix(&hi, config.hi_bytes);
    let map = IdMap::from_freq(&freq, config.hi_bytes)?;
    map.encode_hi(&mut hi)?;
    let hi_lin = linearize::to_columns(&hi, n, config.hi_bytes);
    let hi_comp = codec.compress(&hi_lin)?;
    let sigma_ho = (hi_comp.len() + map.serialized_len()) as f64 / hi.len().max(1) as f64;

    let lo_cols = config.lo_bytes();
    let report = isobar::analyze(&lo, n, lo_cols, &config.isobar);
    let (compressible, _raw) = isobar::partition(&lo, n, lo_cols, report.mask);
    let sigma_lo = if compressible.is_empty() {
        1.0
    } else {
        let lo_comp = codec.compress(&compressible)?;
        lo_comp.len() as f64 / compressible.len() as f64
    };
    Ok((sigma_ho.min(1.5), sigma_lo.min(1.5)))
}

/// Measure a vanilla whole-buffer codec: returns `(sigma, compress_bps,
/// decompress_bps)`.
///
/// Errors propagate from the codec; a round trip that changes the byte
/// count reports [`PrimacyError::Format`].
pub fn measure_vanilla(codec: &dyn Codec, bytes: &[u8]) -> Result<(f64, f64, f64)> {
    let t0 = Instant::now();
    let compressed = codec.compress(bytes)?;
    let c_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let restored = codec.decompress(&compressed)?;
    let d_secs = t0.elapsed().as_secs_f64();
    if restored.len() != bytes.len() {
        return Err(PrimacyError::Format("round trip changed the byte count"));
    }
    let n = bytes.len().max(1) as f64;
    Ok((
        compressed.len() as f64 / n,
        rate(n, c_secs),
        rate(n, d_secs),
    ))
}

impl MeasuredRates {
    /// Assemble full model inputs from these rates plus cluster parameters.
    pub fn to_model_inputs(
        &self,
        cluster: crate::model::ClusterParams,
        chunk_bytes: f64,
        metadata_bytes: f64,
    ) -> ModelInputs {
        ModelInputs {
            cluster,
            chunk_bytes,
            metadata_bytes,
            alpha1: self.alpha1,
            alpha2: self.alpha2,
            sigma_ho: self.sigma_ho,
            sigma_lo: self.sigma_lo,
            t_prec: self.t_prec,
            t_comp: self.t_comp,
            t_decomp: self.t_decomp,
            t_prec_inv: self.t_prec_inv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primacy_codecs::CodecKind;

    fn sample_bytes(n: usize) -> Vec<u8> {
        let mut x = 3u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0 + (x >> 12) as f64 / (1u64 << 52) as f64
            })
            .flat_map(|v: f64| v.to_le_bytes())
            .collect()
    }

    #[test]
    fn primacy_measurement_is_plausible() {
        let cfg = PrimacyConfig::default();
        let bytes = sample_bytes(100_000);
        let m = measure_primacy(&cfg, &bytes).unwrap();
        assert!((m.alpha1 - 0.25).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&m.alpha2));
        assert!(
            m.sigma_ho < 0.8,
            "hi bytes must compress, σho = {}",
            m.sigma_ho
        );
        assert!(m.ratio > 1.0);
        assert!(m.t_prec.is_finite() && m.t_prec > 0.0);
        assert!(m.compress_bps > 0.0 && m.decompress_bps > 0.0);
    }

    #[test]
    fn vanilla_measurement_is_plausible() {
        let codec = CodecKind::Zlib.build();
        let bytes = sample_bytes(50_000);
        let (sigma, cbps, dbps) = measure_vanilla(codec.as_ref(), &bytes).unwrap();
        assert!(sigma > 0.5 && sigma <= 1.05, "sigma {sigma}");
        assert!(cbps > 0.0 && dbps > 0.0);
    }

    #[test]
    fn to_model_inputs_passthrough() {
        let cfg = PrimacyConfig::default();
        let bytes = sample_bytes(20_000);
        let m = measure_primacy(&cfg, &bytes).unwrap();
        let inputs = m.to_model_inputs(Default::default(), 3e6, 4096.0);
        assert_eq!(inputs.alpha1, m.alpha1);
        assert_eq!(inputs.sigma_ho, m.sigma_ho);
        assert!(inputs.effective_ratio() > 0.5);
    }
}
