//! Measure the model's machine-dependent inputs on the running build.
//!
//! The paper measures `Tprec`, `Tcomp`, the compression ratios and the
//! compressible fractions on Jaguar's Opterons; here they are measured on
//! the host machine with the same code paths the benchmarks exercise, then
//! fed to both the analytical model and the cluster simulator.

use crate::model::ModelInputs;
use primacy_codecs::Codec;
use primacy_core::{PrimacyCompressor, PrimacyConfig, PrimacyError, Result};
use std::time::Instant;

/// Machine-measured rates and ratios for one (data, method) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRates {
    /// Preconditioner throughput, bytes/s (forward direction).
    pub t_prec: f64,
    /// Backend compressor throughput over the bytes it actually touched.
    pub t_comp: f64,
    /// Decompression-side codec throughput.
    pub t_decomp: f64,
    /// Inverse-preconditioner throughput.
    pub t_prec_inv: f64,
    /// Compressed/original ratio on the high-order section (σho), including
    /// the index metadata.
    pub sigma_ho: f64,
    /// Compressed/original ratio on the compressible low-order bytes (σlo).
    pub sigma_lo: f64,
    /// Fraction of the chunk routed through the ID mapper (α1).
    pub alpha1: f64,
    /// Compressible fraction of the low-order bytes (α2).
    pub alpha2: f64,
    /// Whole-pipeline compression ratio (original/compressed).
    pub ratio: f64,
    /// Whole-pipeline compression throughput, bytes/s.
    pub compress_bps: f64,
    /// Whole-pipeline decompression throughput, bytes/s.
    pub decompress_bps: f64,
}

/// Run the PRIMACY pipeline over `bytes` once and extract model inputs.
///
/// Errors propagate from the pipeline itself: invalid measurement input
/// surfaces as the same [`PrimacyError`] the production path would return.
pub fn measure_primacy(config: &PrimacyConfig, bytes: &[u8]) -> Result<MeasuredRates> {
    let compressor = PrimacyCompressor::new(config.clone());
    let t0 = Instant::now();
    let (compressed, stats) = compressor.compress_bytes_with_stats(bytes)?;
    let compress_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (restored, dec_stats) = compressor.decompress_bytes_with_stats(&compressed)?;
    let decompress_secs = t0.elapsed().as_secs_f64();
    if restored.len() != bytes.len() {
        return Err(PrimacyError::Format("round trip changed the byte count"));
    }

    let alpha1 = config.hi_bytes as f64 / config.element_size as f64;
    let alpha2 = stats.isobar_compressible_fraction;

    // Section ratios: approximate σho from the overall split. The container
    // interleaves sections per chunk, so recover them by re-running the
    // codec on representative sections would double-measure; instead derive
    // them from the aggregate accounting: compressed = σho·α1·N +
    // σlo·α2·(1−α1)·N + (1−α2)(1−α1)·N + δ. We attribute the ID-side ratio
    // directly by compressing one chunk's hi section, which is cheap.
    let (sigma_ho, sigma_lo) = section_ratios(config, bytes)?;

    let prec_secs = stats.timings.preconditioner().as_secs_f64();
    let codec_secs = stats.timings.codec.as_secs_f64();
    // Decode-side attribution from the measured per-stage timings: codec
    // time is the decompressor proper, everything else is the inverse
    // preconditioner (delinearize, ID decode, unpartition, rejoin).
    let dec_codec_secs = dec_stats.timings.codec.as_secs_f64().max(1e-9);
    let dec_prec_secs = (decompress_secs - dec_codec_secs).max(1e-9);
    let n = bytes.len().max(1) as f64;
    Ok(MeasuredRates {
        t_prec: rate(n, prec_secs),
        t_comp: rate(codec_touched_bytes(alpha1, alpha2, n), codec_secs),
        t_decomp: rate(codec_touched_bytes(alpha1, alpha2, n), dec_codec_secs),
        t_prec_inv: rate(n, dec_prec_secs),
        sigma_ho,
        sigma_lo,
        alpha1,
        alpha2,
        ratio: stats.ratio(),
        compress_bps: rate(n, compress_secs),
        decompress_bps: rate(n, decompress_secs),
    })
}

/// Bytes the backend codec actually processes under the ISOBAR partition.
fn codec_touched_bytes(alpha1: f64, alpha2: f64, n: f64) -> f64 {
    (alpha1 + alpha2 * (1.0 - alpha1)) * n
}

fn rate(bytes: f64, secs: f64) -> f64 {
    if secs <= 0.0 {
        f64::INFINITY
    } else {
        bytes / secs
    }
}

/// Compress one chunk's high and low sections separately to estimate σho
/// and σlo.
fn section_ratios(config: &PrimacyConfig, bytes: &[u8]) -> Result<(f64, f64)> {
    use primacy_core::{freq::FreqTable, idmap::IdMap, isobar, linearize, split};
    let chunk_len = (config.chunk_elements() * config.element_size).min(bytes.len());
    let chunk = &bytes[..chunk_len - chunk_len % config.element_size];
    if chunk.is_empty() {
        return Ok((1.0, 1.0));
    }
    let codec = config.codec.build();
    let (mut hi, lo) = split::split_hi_lo(chunk, config.element_size, config.hi_bytes)?;
    let n = chunk.len() / config.element_size;
    let freq = FreqTable::from_hi_matrix(&hi, config.hi_bytes);
    let map = IdMap::from_freq(&freq, config.hi_bytes)?;
    map.encode_hi(&mut hi)?;
    let hi_lin = linearize::to_columns(&hi, n, config.hi_bytes);
    let hi_comp = codec.compress(&hi_lin)?;
    let sigma_ho = (hi_comp.len() + map.serialized_len()) as f64 / hi.len().max(1) as f64;

    let lo_cols = config.lo_bytes();
    let report = isobar::analyze(&lo, n, lo_cols, &config.isobar);
    let (compressible, _raw) = isobar::partition(&lo, n, lo_cols, report.mask);
    let sigma_lo = if compressible.is_empty() {
        1.0
    } else {
        let lo_comp = codec.compress(&compressible)?;
        lo_comp.len() as f64 / compressible.len() as f64
    };
    Ok((sigma_ho.min(1.5), sigma_lo.min(1.5)))
}

/// Measure a vanilla whole-buffer codec: returns `(sigma, compress_bps,
/// decompress_bps)`.
///
/// Errors propagate from the codec; a round trip that changes the byte
/// count reports [`PrimacyError::Format`].
pub fn measure_vanilla(codec: &dyn Codec, bytes: &[u8]) -> Result<(f64, f64, f64)> {
    let t0 = Instant::now();
    let compressed = codec.compress(bytes)?;
    let c_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let restored = codec.decompress(&compressed)?;
    let d_secs = t0.elapsed().as_secs_f64();
    if restored.len() != bytes.len() {
        return Err(PrimacyError::Format("round trip changed the byte count"));
    }
    let n = bytes.len().max(1) as f64;
    Ok((
        compressed.len() as f64 / n,
        rate(n, c_secs),
        rate(n, d_secs),
    ))
}

/// Per-stage throughputs loaded from a persisted benchmark report
/// (`results/BENCH_throughput.json`), so the model runs on *this machine's*
/// measured rates rather than re-measuring (or worse, guessing Jaguar's).
///
/// The report is flat: `{"experiment": ..., "records": [{"key": "...",
/// "value": N}, ...]}`. The loader is a minimal scanner keyed to that
/// machine-written shape — keys are plain path strings with no escapes —
/// which keeps this crate free of a JSON dependency it otherwise never needs.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    records: Vec<(String, f64)>,
}

impl Calibration {
    /// Parse a benchmark report document.
    pub fn from_json(text: &str) -> Result<Self> {
        let records = scan_records(text)?;
        if records.is_empty() {
            return Err(PrimacyError::Format("calibration report has no records"));
        }
        Ok(Self { records })
    }

    /// Load and parse a report file (e.g. `results/BENCH_throughput.json`).
    pub fn from_path(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|_| PrimacyError::Format("calibration report is unreadable"))?;
        Self::from_json(&text)
    }

    /// Look up one record by its full key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.records.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Whole-pipeline compression throughput for `corpus`, bytes/s.
    pub fn compress_bps(&self, corpus: &str) -> Option<f64> {
        self.get(&format!("throughput/{corpus}/primacy/compress_mbps"))
            .map(|mbps| mbps * 1e6)
    }

    /// Whole-pipeline decompression throughput for `corpus`, bytes/s.
    /// (Named after [`MeasuredRates::t_decomp`]'s vocabulary: this is a
    /// calibration lookup, not a decode entry point.)
    pub fn decomp_bps(&self, corpus: &str) -> Option<f64> {
        self.get(&format!("throughput/{corpus}/primacy/decompress_mbps"))
            .map(|mbps| mbps * 1e6)
    }

    /// Whole-pipeline compression ratio (original/compressed) for `corpus`.
    pub fn ratio(&self, corpus: &str) -> Option<f64> {
        self.get(&format!("throughput/{corpus}/primacy/ratio"))
    }

    /// All record keys, for discovery and diagnostics.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.records.iter().map(|(k, _)| k.as_str())
    }
}

/// Extract every `"key": "...", "value": N` pair from a bench report.
fn scan_records(text: &str) -> Result<Vec<(String, f64)>> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"key\"") {
        rest = &rest[pos + 5..];
        let open = rest.find('"').ok_or(PrimacyError::Format(
            "calibration record key is not a string",
        ))?;
        rest = &rest[open + 1..];
        let close = rest.find('"').ok_or(PrimacyError::Format(
            "calibration record key is unterminated",
        ))?;
        let key = &rest[..close];
        rest = &rest[close + 1..];
        let vpos = rest
            .find("\"value\"")
            .ok_or(PrimacyError::Format("calibration record has no value"))?;
        rest = &rest[vpos + 7..];
        let colon = rest
            .find(':')
            .ok_or(PrimacyError::Format("calibration value has no separator"))?;
        rest = rest[colon + 1..].trim_start();
        let end = rest
            .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .unwrap_or(rest.len());
        let value: f64 = rest[..end]
            .parse()
            .map_err(|_| PrimacyError::Format("calibration value is not a number"))?;
        if !value.is_finite() {
            return Err(PrimacyError::Format("calibration value is not finite"));
        }
        out.push((key.to_string(), value));
        rest = &rest[end..];
    }
    Ok(out)
}

/// Predicted wall-clock for one archive write, bulk-synchronous vs
/// overlapped, from calibrated stage rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePrediction {
    /// Sequential baseline: compression and sink writes pay serially.
    pub bulk_secs: f64,
    /// Double-buffered pipeline: the shorter stage hides behind the longer.
    pub overlapped_secs: f64,
    /// `bulk_secs / overlapped_secs`.
    pub speedup: f64,
}

/// Model one archive write through the double-buffered [`ArchiveWriter`]
/// pipeline.
///
/// Bulk-synchronous cost is the serial sum `N/Tc + (N/ratio)/Tw`. The
/// overlapped writer compresses on `threads` workers while a dedicated
/// writer thread drains sections, so steady state costs the *maximum* of the
/// two stage times, plus a one-chunk pipeline fill before the writer has
/// anything to flush. Rates come from [`Calibration`] (measured) or
/// [`measure_primacy`] (re-measured); either way they are this machine's.
///
/// [`ArchiveWriter`]: primacy_core::ArchiveWriter
pub fn predict_archive_write(
    input_bytes: f64,
    ratio: f64,
    compress_bps: f64,
    write_bps: f64,
    threads: usize,
    chunk_bytes: f64,
) -> WritePrediction {
    let compressed = input_bytes / ratio.max(1e-9);
    let compress_secs = input_bytes / compress_bps.max(1e-9);
    let write_secs = compressed / write_bps.max(1e-9);
    let bulk_secs = compress_secs + write_secs;
    let fill_secs = chunk_bytes.min(input_bytes) / compress_bps.max(1e-9);
    let overlapped_secs = (compress_secs / threads.max(1) as f64).max(write_secs) + fill_secs;
    WritePrediction {
        bulk_secs,
        overlapped_secs,
        speedup: bulk_secs / overlapped_secs.max(1e-12),
    }
}

impl MeasuredRates {
    /// Assemble full model inputs from these rates plus cluster parameters.
    pub fn to_model_inputs(
        &self,
        cluster: crate::model::ClusterParams,
        chunk_bytes: f64,
        metadata_bytes: f64,
    ) -> ModelInputs {
        ModelInputs {
            cluster,
            chunk_bytes,
            metadata_bytes,
            alpha1: self.alpha1,
            alpha2: self.alpha2,
            sigma_ho: self.sigma_ho,
            sigma_lo: self.sigma_lo,
            t_prec: self.t_prec,
            t_comp: self.t_comp,
            t_decomp: self.t_decomp,
            t_prec_inv: self.t_prec_inv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use primacy_codecs::CodecKind;

    fn sample_bytes(n: usize) -> Vec<u8> {
        let mut x = 3u64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0 + (x >> 12) as f64 / (1u64 << 52) as f64
            })
            .flat_map(|v: f64| v.to_le_bytes())
            .collect()
    }

    #[test]
    fn primacy_measurement_is_plausible() {
        let cfg = PrimacyConfig::default();
        let bytes = sample_bytes(100_000);
        let m = measure_primacy(&cfg, &bytes).unwrap();
        assert!((m.alpha1 - 0.25).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&m.alpha2));
        assert!(
            m.sigma_ho < 0.8,
            "hi bytes must compress, σho = {}",
            m.sigma_ho
        );
        assert!(m.ratio > 1.0);
        assert!(m.t_prec.is_finite() && m.t_prec > 0.0);
        assert!(m.compress_bps > 0.0 && m.decompress_bps > 0.0);
    }

    #[test]
    fn vanilla_measurement_is_plausible() {
        let codec = CodecKind::Zlib.build();
        let bytes = sample_bytes(50_000);
        let (sigma, cbps, dbps) = measure_vanilla(codec.as_ref(), &bytes).unwrap();
        assert!(sigma > 0.5 && sigma <= 1.05, "sigma {sigma}");
        assert!(cbps > 0.0 && dbps > 0.0);
    }

    #[test]
    fn calibration_parses_bench_report_shape() {
        let doc = r#"{"experiment":"throughput","records":[
            {"key":"throughput/random/primacy/compress_mbps","value":150.75},
            {"key":"throughput/random/primacy/decompress_mbps","value":900.5},
            {"key":"throughput/random/primacy/ratio","value":1.002}]}"#;
        let cal = Calibration::from_json(doc).unwrap();
        assert_eq!(cal.compress_bps("random"), Some(150.75e6));
        assert_eq!(cal.decomp_bps("random"), Some(900.5e6));
        assert_eq!(cal.ratio("random"), Some(1.002));
        assert_eq!(cal.get("throughput/none/primacy/ratio"), None);
        assert_eq!(cal.keys().count(), 3);
    }

    #[test]
    fn calibration_rejects_malformed_reports() {
        assert!(Calibration::from_json("{}").is_err());
        assert!(Calibration::from_json(r#"{"records":[{"key":"a"}]}"#).is_err());
        assert!(Calibration::from_json(r#"{"key":"a","value":"x"}"#).is_err());
    }

    #[test]
    fn overlap_prediction_hides_shorter_stage() {
        // 1 GB at 100 MB/s compress, 2:1 ratio, 500 MB/s sink: compression
        // dominates, so overlap approaches the compression time alone.
        let p = predict_archive_write(1e9, 2.0, 100e6, 500e6, 1, 3e6);
        assert!(p.bulk_secs > p.overlapped_secs);
        assert!((p.bulk_secs - 11.0).abs() < 1e-6);
        assert!(p.overlapped_secs < 10.1 && p.overlapped_secs >= 10.0);
        assert!(p.speedup > 1.0);
        // More compress workers shift the bottleneck to the sink.
        let p4 = predict_archive_write(1e9, 2.0, 100e6, 500e6, 4, 3e6);
        assert!(p4.overlapped_secs < p.overlapped_secs);
        assert!(p4.overlapped_secs >= 2.5); // write_secs = 1.0, compress/4 = 2.5
    }

    #[test]
    fn to_model_inputs_passthrough() {
        let cfg = PrimacyConfig::default();
        let bytes = sample_bytes(20_000);
        let m = measure_primacy(&cfg, &bytes).unwrap();
        let inputs = m.to_model_inputs(Default::default(), 3e6, 4096.0);
        assert_eq!(inputs.alpha1, m.alpha1);
        assert_eq!(inputs.sigma_ho, m.sigma_ho);
        assert!(inputs.effective_ratio() > 0.5);
    }
}
