//! Scenario glue: evaluate (dataset × compression method) end-to-end, both
//! through the analytical model ("theoretical") and the cluster simulator
//! ("empirical") — the six-bar groups of Fig. 4.

use crate::measure::{measure_primacy, measure_vanilla};
use crate::model::{self, ClusterParams, ModelInputs};
use crate::sim::{simulate, Direction, SimConfig};
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyConfig, Result};

/// A compression strategy applied at the compute nodes.
#[derive(Debug, Clone)]
pub enum CompressionMethod {
    /// No compression (the null case).
    Null,
    /// The PRIMACY pipeline with the given configuration.
    Primacy(PrimacyConfig),
    /// Vanilla whole-chunk compression with one of the standard codecs.
    Vanilla(CodecKind),
}

impl CompressionMethod {
    /// Short label used in tables ("P", "Z", "L" in the paper's figures).
    pub fn label(&self) -> String {
        match self {
            CompressionMethod::Null => "null".into(),
            CompressionMethod::Primacy(_) => "primacy".into(),
            CompressionMethod::Vanilla(kind) => kind.to_string(),
        }
    }
}

/// A cluster + workload setting under which methods are compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Cluster parameters (ρ, θ, μ).
    pub cluster: ClusterParams,
    /// Chunk size per compute node per step.
    pub chunk_bytes: usize,
    /// Bulk-synchronous steps for the simulator.
    pub steps: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            cluster: ClusterParams::default(),
            chunk_bytes: 3 * 1024 * 1024,
            steps: 16,
        }
    }
}

/// Model and simulation throughputs for one method on one dataset, MB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEnd {
    /// Method label.
    pub method: String,
    /// Analytical write throughput (the paper's "T" bars).
    pub write_theoretical_mbps: f64,
    /// Simulated write throughput (the paper's "E" bars).
    pub write_empirical_mbps: f64,
    /// Analytical read throughput.
    pub read_theoretical_mbps: f64,
    /// Simulated read throughput.
    pub read_empirical_mbps: f64,
    /// Compression ratio achieved on this dataset (1.0 for null).
    pub ratio: f64,
}

impl Scenario {
    /// Evaluate one method on a dataset (raw little-endian doubles).
    ///
    /// Measurement failures (the pipeline rejecting the dataset, a codec
    /// error) propagate as the underlying [`primacy_core::PrimacyError`].
    pub fn evaluate(&self, method: &CompressionMethod, data: &[u8]) -> Result<EndToEnd> {
        let c = self.chunk_bytes as f64;
        Ok(match method {
            CompressionMethod::Null => {
                let inputs = self.null_inputs();
                let wt = model::base_write(&inputs).tau;
                let rt = model::base_read(&inputs).tau;
                let ws = simulate(&self.sim_config(c, 0.0, Direction::Write));
                let rs = simulate(&self.sim_config(c, 0.0, Direction::Read));
                EndToEnd {
                    method: method.label(),
                    write_theoretical_mbps: wt / 1e6,
                    write_empirical_mbps: ws.tau_bps / 1e6,
                    read_theoretical_mbps: rt / 1e6,
                    read_empirical_mbps: rs.tau_bps / 1e6,
                    ratio: 1.0,
                }
            }
            CompressionMethod::Primacy(cfg) => {
                let rates = measure_primacy(cfg, data)?;
                let inputs = rates.to_model_inputs(
                    self.cluster,
                    c,
                    // Index metadata per chunk: measured ratio already folds
                    // it in; the model term uses a representative size.
                    2048.0,
                );
                let wt = model::primacy_write(&inputs).tau;
                let rt = model::primacy_read(&inputs).tau;
                let c_out = c / rates.ratio;
                let ws = simulate(&SimConfig {
                    compressed_bytes: c_out,
                    compute_secs: c / rates.compress_bps,
                    ..self.sim_config(c, 0.0, Direction::Write)
                });
                let rs = simulate(&SimConfig {
                    compressed_bytes: c_out,
                    compute_secs: c / rates.decompress_bps,
                    ..self.sim_config(c, 0.0, Direction::Read)
                });
                EndToEnd {
                    method: method.label(),
                    write_theoretical_mbps: wt / 1e6,
                    write_empirical_mbps: ws.tau_bps / 1e6,
                    read_theoretical_mbps: rt / 1e6,
                    read_empirical_mbps: rs.tau_bps / 1e6,
                    ratio: rates.ratio,
                }
            }
            CompressionMethod::Vanilla(kind) => {
                let codec = kind.build();
                let (sigma, cbps, dbps) = measure_vanilla(codec.as_ref(), data)?;
                let inputs = self.null_inputs();
                let wt = model::vanilla_write(&inputs, sigma, cbps).tau;
                let rt = model::vanilla_read(&inputs, sigma, dbps).tau;
                let ws = simulate(&SimConfig {
                    compressed_bytes: c * sigma,
                    compute_secs: c / cbps,
                    ..self.sim_config(c, 0.0, Direction::Write)
                });
                let rs = simulate(&SimConfig {
                    compressed_bytes: c * sigma,
                    compute_secs: c / dbps,
                    ..self.sim_config(c, 0.0, Direction::Read)
                });
                EndToEnd {
                    method: method.label(),
                    write_theoretical_mbps: wt / 1e6,
                    write_empirical_mbps: ws.tau_bps / 1e6,
                    read_theoretical_mbps: rt / 1e6,
                    read_empirical_mbps: rs.tau_bps / 1e6,
                    ratio: 1.0 / sigma,
                }
            }
        })
    }

    fn null_inputs(&self) -> ModelInputs {
        ModelInputs {
            cluster: self.cluster,
            chunk_bytes: self.chunk_bytes as f64,
            metadata_bytes: 0.0,
            alpha1: 0.25,
            alpha2: 0.0,
            sigma_ho: 1.0,
            sigma_lo: 1.0,
            t_prec: f64::INFINITY,
            t_comp: f64::INFINITY,
            t_decomp: f64::INFINITY,
            t_prec_inv: f64::INFINITY,
        }
    }

    fn sim_config(&self, compressed: f64, compute: f64, direction: Direction) -> SimConfig {
        SimConfig {
            rho: self.cluster.rho as usize,
            steps: self.steps,
            chunk_bytes: self.chunk_bytes as f64,
            compressed_bytes: compressed,
            compute_secs: compute,
            theta: self.cluster.theta,
            mu: match direction {
                Direction::Write => self.cluster.mu_write,
                Direction::Read => self.cluster.mu_read,
            },
            direction,
            jitter: 0.04,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<u8> {
        let mut x = 11u64;
        (0..200_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                1.0 + (x >> 12) as f64 / (1u64 << 52) as f64
            })
            .flat_map(|v: f64| v.to_le_bytes())
            .collect()
    }

    #[test]
    fn null_case_theory_matches_sim_roughly() {
        let s = Scenario::default();
        let e = s
            .evaluate(&CompressionMethod::Null, &sample_data())
            .unwrap();
        let rel =
            (e.write_theoretical_mbps - e.write_empirical_mbps).abs() / e.write_theoretical_mbps;
        assert!(
            rel < 0.3,
            "write theory {} vs sim {}",
            e.write_theoretical_mbps,
            e.write_empirical_mbps
        );
        assert_eq!(e.ratio, 1.0);
    }

    #[test]
    fn primacy_beats_null_on_hard_data() {
        let s = Scenario::default();
        let data = sample_data();
        let null = s.evaluate(&CompressionMethod::Null, &data).unwrap();
        let prim = s
            .evaluate(&CompressionMethod::Primacy(PrimacyConfig::default()), &data)
            .unwrap();
        assert!(prim.ratio > 1.05, "ratio {}", prim.ratio);
        assert!(
            prim.write_empirical_mbps > null.write_empirical_mbps,
            "primacy {} vs null {}",
            prim.write_empirical_mbps,
            null.write_empirical_mbps
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CompressionMethod::Null.label(), "null");
        assert_eq!(CompressionMethod::Vanilla(CodecKind::Lzr).label(), "lzr");
        assert_eq!(
            CompressionMethod::Primacy(PrimacyConfig::default()).label(),
            "primacy"
        );
    }
}
