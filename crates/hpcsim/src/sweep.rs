//! Parameter sweeps over the §III model — the paper's closing promise that
//! the model "can enable prediction of I/O performance on target systems ...
//! and additionally help application developers in choosing particular
//! configurations", as a queryable API instead of a one-off plot.

use crate::model::{base_write, primacy_write, vanilla_write, ClusterParams, ModelInputs};

/// One strategy's predicted throughput at a grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Compute-to-I/O-node ratio at this point.
    pub rho: f64,
    /// Disk write throughput at this point, bytes/s.
    pub mu_write: f64,
    /// Null-case throughput, bytes/s.
    pub null_bps: f64,
    /// PRIMACY throughput, bytes/s.
    pub primacy_bps: f64,
    /// Vanilla-codec throughput, bytes/s.
    pub vanilla_bps: f64,
}

impl GridPoint {
    /// Which strategy wins here.
    pub fn winner(&self) -> Strategy {
        if self.primacy_bps >= self.null_bps && self.primacy_bps >= self.vanilla_bps {
            Strategy::Primacy
        } else if self.vanilla_bps >= self.null_bps {
            Strategy::Vanilla
        } else {
            Strategy::Null
        }
    }

    /// Best gain over null, as a fraction (≥ 0 when compression wins).
    pub fn best_gain(&self) -> f64 {
        (self.primacy_bps.max(self.vanilla_bps) / self.null_bps) - 1.0
    }
}

/// A compression strategy label for sweep results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No compression.
    Null,
    /// PRIMACY at the compute nodes.
    Primacy,
    /// Vanilla whole-chunk codec at the compute nodes.
    Vanilla,
}

/// Sweep the model over (ρ × μw), holding the measured rates fixed.
///
/// `vanilla` is `(sigma, t_comp_bps)` for the whole-chunk codec being
/// compared (e.g. from [`crate::measure_vanilla`]).
pub fn sweep_rho_mu(
    template: &ModelInputs,
    vanilla: (f64, f64),
    rhos: &[f64],
    mu_writes: &[f64],
) -> Vec<GridPoint> {
    let mut grid = Vec::with_capacity(rhos.len() * mu_writes.len());
    for &rho in rhos {
        for &mu_write in mu_writes {
            let inputs = ModelInputs {
                cluster: ClusterParams {
                    rho,
                    mu_write,
                    ..template.cluster
                },
                ..*template
            };
            grid.push(GridPoint {
                rho,
                mu_write,
                null_bps: base_write(&inputs).tau,
                primacy_bps: primacy_write(&inputs).tau,
                vanilla_bps: vanilla_write(&inputs, vanilla.0, vanilla.1).tau,
            });
        }
    }
    grid
}

/// The disk speed above which compression stops paying at a given ρ: the
/// crossover the paper's model exists to locate. Returns `None` when
/// compression wins across the whole probed range.
pub fn crossover_mu(template: &ModelInputs, rho: f64, probe_max: f64) -> Option<f64> {
    // Bisect on μw between 0.1 MB/s and probe_max.
    let wins = |mu: f64| {
        let inputs = ModelInputs {
            cluster: ClusterParams {
                rho,
                mu_write: mu,
                ..template.cluster
            },
            ..*template
        };
        primacy_write(&inputs).tau > base_write(&inputs).tau
    };
    if wins(probe_max) {
        return None;
    }
    let (mut lo, mut hi) = (0.1e6, probe_max);
    if !wins(lo) {
        return Some(lo);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if wins(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> ModelInputs {
        ModelInputs {
            cluster: ClusterParams::default(),
            chunk_bytes: 3.0 * 1024.0 * 1024.0,
            metadata_bytes: 2048.0,
            alpha1: 0.25,
            alpha2: 0.1,
            sigma_ho: 0.3,
            sigma_lo: 0.9,
            t_prec: 500e6,
            t_comp: 80e6,
            t_decomp: 250e6,
            t_prec_inv: 600e6,
        }
    }

    #[test]
    fn grid_has_expected_shape_and_structure() {
        let grid = sweep_rho_mu(&template(), (0.9, 15e6), &[2.0, 8.0], &[4e6, 32e6, 256e6]);
        assert_eq!(grid.len(), 6);
        // Slow disk, high fan-in: compression wins; very fast disk: null.
        let slow = grid
            .iter()
            .find(|g| g.rho == 8.0 && g.mu_write == 4e6)
            .unwrap();
        assert_eq!(slow.winner(), Strategy::Primacy);
        assert!(slow.best_gain() > 0.0);
        let fast = grid
            .iter()
            .find(|g| g.rho == 2.0 && g.mu_write == 256e6)
            .unwrap();
        assert_eq!(fast.winner(), Strategy::Null);
    }

    #[test]
    fn crossover_exists_and_orders_with_rho() {
        let t = template();
        let c8 = crossover_mu(&t, 8.0, 10e9).expect("crossover in range");
        assert!(c8 > 1e6, "crossover {c8}");
        // At the crossover, the two strategies are within a hair.
        let inputs = ModelInputs {
            cluster: ClusterParams {
                rho: 8.0,
                mu_write: c8,
                ..t.cluster
            },
            ..t
        };
        let gap =
            (primacy_write(&inputs).tau - base_write(&inputs).tau).abs() / base_write(&inputs).tau;
        assert!(gap < 0.01, "gap at crossover {gap}");
    }

    #[test]
    fn crossover_none_when_compression_always_wins() {
        let mut t = template();
        t.sigma_ho = 0.01;
        t.sigma_lo = 0.01; // absurdly compressible
        t.t_prec = 1e12;
        t.t_comp = 1e12; // free CPU
        assert!(crossover_mu(&t, 8.0, 1e9).is_none());
    }
}
