//! Performance modeling and staging-I/O simulation for PRIMACY (§III–IV of
//! the paper).
//!
//! The paper evaluates end-to-end write/read throughput on the Jaguar XK6
//! cluster with an 8:1 compute-to-I/O-node staging configuration, and
//! validates an analytical model of the same pipeline. This crate provides
//! both halves of that methodology:
//!
//! * [`model`] — the closed-form performance model of §III (Tables I/II,
//!   Equations 3–13): bulk-synchronous writes through I/O nodes, with and
//!   without compression at the compute nodes, plus the mirrored read model.
//! * [`measure`] — measures the *actual* preconditioner/codec throughputs
//!   and ratios of this machine's build (the model inputs `Tprec`, `Tcomp`,
//!   `σho`, `σlo`, `α1`, `α2`).
//! * [`sim`] — a discrete-event simulation of the staging pipeline (compute
//!   nodes → shared collective network → I/O node → disk) that produces the
//!   "empirical" counterpart to the model's "theoretical" numbers; this is
//!   the testbed substitute for the Cray XK6 (see DESIGN.md).
//! * [`scenario`] — glue that turns (dataset × compression method) into
//!   model inputs and simulation runs.
//! * [`welton`] — the costless-compression model of the paper's reference
//!   \[22\], kept to quantify how much it over-predicts (§V's argument).
//! * [`checkpoint`] — Young/Daly optimal checkpoint intervals and machine
//!   efficiency, translating the write-throughput gains into saved machine
//!   time (the introduction's motivation).

pub mod checkpoint;
pub mod measure;
pub mod model;
pub mod scenario;
pub mod sim;
pub mod sweep;
pub mod welton;

pub use checkpoint::CheckpointPlan;
pub use measure::{
    measure_primacy, measure_vanilla, predict_archive_write, Calibration, MeasuredRates,
    WritePrediction,
};
pub use model::{ClusterParams, ModelInputs, ModelOutputs};
pub use scenario::{CompressionMethod, Scenario};
pub use sim::{SimConfig, SimResult};
