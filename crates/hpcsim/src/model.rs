//! The analytical performance model of §III.
//!
//! Notation follows Tables I and II of the paper. Two deliberate deviations
//! from the printed equations, both documented in DESIGN.md:
//!
//! 1. Eq. 11/12 multiply the *incompressible* fraction by σlo; data that is
//!    stored raw travels at full size, so that factor is 1 here (taking the
//!    equation literally would let uncompressed bytes shrink in transit).
//! 2. Eq. 12 scales the disk-write term by (1+ρ) while the base case (Eq. 5)
//!    uses ρ; the disk stores the ρ compute nodes' data exactly once, so ρ
//!    is used consistently.
//!
//! Neither changes who wins or where crossovers fall; both make the model
//! dimensionally consistent.

/// Cluster-wide parameters (a subset of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// ρ — compute nodes per I/O node (8 in all of the paper's runs).
    pub rho: f64,
    /// θ — collective-network throughput at the I/O node, bytes/s.
    pub theta: f64,
    /// μw — disk write throughput, bytes/s.
    pub mu_write: f64,
    /// μr — disk read throughput, bytes/s.
    pub mu_read: f64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        // Defaults shaped after the paper's staging environment: a fast
        // Gemini-class collective network in front of a much slower
        // per-I/O-node share of the parallel filesystem. Writes contend with
        // every other job's checkpoints (slow); reads hit the OSS cache
        // (fast), which is what makes vanilla decompression a net loss in
        // Fig. 4b while PRIMACY still wins.
        Self {
            rho: 8.0,
            theta: 1.2e9,
            mu_write: 8e6,
            mu_read: 250e6,
        }
    }
}

/// Full model input set (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInputs {
    /// Cluster parameters.
    pub cluster: ClusterParams,
    /// C — chunk size in bytes.
    pub chunk_bytes: f64,
    /// δ — metadata bytes per chunk (PRIMACY's index).
    pub metadata_bytes: f64,
    /// α1 — fraction of the chunk handled by the ID mapper (the high-order
    /// bytes; 2/8 for doubles).
    pub alpha1: f64,
    /// α2 — fraction of the low-order bytes ISOBAR classifies compressible.
    pub alpha2: f64,
    /// σho — compressed/original size ratio on the high-order bytes.
    pub sigma_ho: f64,
    /// σlo — compressed/original ratio on the compressible low-order bytes.
    pub sigma_lo: f64,
    /// Tprec — preconditioner throughput, bytes/s.
    pub t_prec: f64,
    /// Tcomp — backend compressor throughput, bytes/s.
    pub t_comp: f64,
    /// Decompressor throughput, bytes/s (for the read model).
    pub t_decomp: f64,
    /// Preconditioner-inverse throughput, bytes/s (for the read model).
    pub t_prec_inv: f64,
}

/// Model outputs (Table II). All times are seconds for one bulk-synchronous
/// step of ρ chunks (one per compute node); `tau` is the end-to-end
/// throughput of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelOutputs {
    /// Time in the PRIMACY preconditioner (Eq. 7).
    pub t_prec1: f64,
    /// Time in the ISOBAR preconditioner (Eq. 8).
    pub t_prec2: f64,
    /// Time compressing the high-order bytes (Eq. 9).
    pub t_compress1: f64,
    /// Time compressing the compressible low-order bytes (Eq. 10).
    pub t_compress2: f64,
    /// Network transfer time (Eq. 11 / Eq. 4).
    pub t_transfer: f64,
    /// Disk time (Eq. 12 / Eq. 5).
    pub t_disk: f64,
    /// Total end-to-end time (Eq. 13 / Eq. 6).
    pub t_total: f64,
    /// End-to-end throughput ρ·C/t_total (Eq. 3), bytes/s.
    pub tau: f64,
}

impl ModelInputs {
    /// Bytes leaving a compute node per chunk after PRIMACY compression.
    pub fn compressed_chunk_bytes(&self) -> f64 {
        let c = self.chunk_bytes;
        let compressed_hi = self.alpha1 * c * self.sigma_ho;
        let compressed_lo = self.alpha2 * (1.0 - self.alpha1) * c * self.sigma_lo;
        let raw_lo = (1.0 - self.alpha2) * (1.0 - self.alpha1) * c;
        compressed_hi + compressed_lo + raw_lo + self.metadata_bytes
    }

    /// Effective compression ratio implied by the inputs.
    pub fn effective_ratio(&self) -> f64 {
        self.chunk_bytes / self.compressed_chunk_bytes()
    }
}

/// Base case (§III-B): no compression, data flows straight to disk.
pub fn base_write(inputs: &ModelInputs) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let t_transfer = (1.0 + p.rho) * c / p.theta; // Eq. 4
    let t_disk = p.rho * c / p.mu_write; // Eq. 5
    let t_total = t_transfer + t_disk; // Eq. 6
    ModelOutputs {
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total, // Eq. 3
        ..Default::default()
    }
}

/// Base case read: the write path reversed.
pub fn base_read(inputs: &ModelInputs) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let t_disk = p.rho * c / p.mu_read;
    let t_transfer = (1.0 + p.rho) * c / p.theta;
    let t_total = t_transfer + t_disk;
    ModelOutputs {
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
        ..Default::default()
    }
}

/// PRIMACY at the compute nodes (§III-C): Eqs. 7–13. Compression happens in
/// parallel on every compute node, so the per-step cost is one chunk's worth
/// of preconditioning/compression; transfer and disk see the reduced sizes.
pub fn primacy_write(inputs: &ModelInputs) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let t_prec1 = c / inputs.t_prec; // Eq. 7
    let t_prec2 = (1.0 - inputs.alpha1) * c / inputs.t_prec; // Eq. 8
    let t_compress1 = inputs.alpha1 * c / inputs.t_comp; // Eq. 9
    let t_compress2 = inputs.alpha2 * (1.0 - inputs.alpha1) * c / inputs.t_comp; // Eq. 10
    let c_out = inputs.compressed_chunk_bytes();
    let t_transfer = (1.0 + p.rho) * c_out / p.theta; // Eq. 11 (σ applied via c_out)
    let t_disk = p.rho * c_out / p.mu_write; // Eq. 12 (ρ, see module docs)
    let t_total = t_prec1 + t_prec2 + t_compress1 + t_compress2 + t_transfer + t_disk; // Eq. 13
    ModelOutputs {
        t_prec1,
        t_prec2,
        t_compress1,
        t_compress2,
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
    }
}

/// PRIMACY read (§III, "inverse order of operations"): disk → network →
/// decompress → inverse-precondition.
pub fn primacy_read(inputs: &ModelInputs) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let c_in = inputs.compressed_chunk_bytes();
    let t_disk = p.rho * c_in / p.mu_read;
    let t_transfer = (1.0 + p.rho) * c_in / p.theta;
    let t_decompress1 = inputs.alpha1 * c / inputs.t_decomp;
    let t_decompress2 = inputs.alpha2 * (1.0 - inputs.alpha1) * c / inputs.t_decomp;
    let t_post = c / inputs.t_prec_inv;
    let t_total = t_disk + t_transfer + t_decompress1 + t_decompress2 + t_post;
    ModelOutputs {
        t_prec1: t_post,
        t_prec2: 0.0,
        t_compress1: t_decompress1,
        t_compress2: t_decompress2,
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
    }
}

/// Vanilla whole-chunk compression at the compute nodes (the zlib/lzo bars
/// of Fig. 4): one compressor pass over the full chunk, no preconditioner,
/// no partition.
pub fn vanilla_write(inputs: &ModelInputs, sigma: f64, t_comp: f64) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let t_compress1 = c / t_comp;
    let c_out = c * sigma;
    let t_transfer = (1.0 + p.rho) * c_out / p.theta;
    let t_disk = p.rho * c_out / p.mu_write;
    let t_total = t_compress1 + t_transfer + t_disk;
    ModelOutputs {
        t_compress1,
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
        ..Default::default()
    }
}

/// Vanilla whole-chunk decompression read.
pub fn vanilla_read(inputs: &ModelInputs, sigma: f64, t_decomp: f64) -> ModelOutputs {
    let c = inputs.chunk_bytes;
    let p = inputs.cluster;
    let c_in = c * sigma;
    let t_disk = p.rho * c_in / p.mu_read;
    let t_transfer = (1.0 + p.rho) * c_in / p.theta;
    let t_compress1 = c / t_decomp;
    let t_total = t_disk + t_transfer + t_compress1;
    ModelOutputs {
        t_compress1,
        t_transfer,
        t_disk,
        t_total,
        tau: p.rho * c / t_total,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> ModelInputs {
        ModelInputs {
            cluster: ClusterParams::default(),
            chunk_bytes: 3.0 * 1024.0 * 1024.0,
            metadata_bytes: 4096.0,
            alpha1: 0.25,
            alpha2: 0.2,
            sigma_ho: 0.25,
            sigma_lo: 0.8,
            t_prec: 400e6,
            t_comp: 120e6,
            t_decomp: 300e6,
            t_prec_inv: 600e6,
        }
    }

    #[test]
    fn compressed_chunk_accounting() {
        let m = inputs();
        let c = m.chunk_bytes;
        let expected = 0.25 * c * 0.25 + 0.2 * 0.75 * c * 0.8 + 0.8 * 0.75 * c + 4096.0;
        assert!((m.compressed_chunk_bytes() - expected).abs() < 1e-6);
        assert!(m.effective_ratio() > 1.0);
    }

    #[test]
    fn base_write_matches_equations() {
        let m = inputs();
        let out = base_write(&m);
        let c = m.chunk_bytes;
        let p = m.cluster;
        assert!((out.t_transfer - 9.0 * c / p.theta).abs() < 1e-12);
        assert!((out.t_disk - 8.0 * c / p.mu_write).abs() < 1e-12);
        assert!((out.t_total - (out.t_transfer + out.t_disk)).abs() < 1e-12);
        assert!((out.tau - 8.0 * c / out.t_total).abs() < 1e-6);
    }

    #[test]
    fn primacy_beats_base_when_disk_bound() {
        // Slow disk, good ratio, fast codec: compression must win.
        let m = inputs();
        let base = base_write(&m);
        let prim = primacy_write(&m);
        assert!(
            prim.tau > base.tau,
            "primacy {:.1} <= base {:.1} MB/s",
            prim.tau / 1e6,
            base.tau / 1e6
        );
    }

    #[test]
    fn slow_compressor_loses_end_to_end() {
        // A compressor slower than the disk it saves cannot pay for itself —
        // the paper's core argument against bzlib2-class codecs in-situ.
        let mut m = inputs();
        m.t_comp = 0.5e6; // 0.5 MB/s, worse than bzip2-class
        let base = base_write(&m);
        let prim = primacy_write(&m);
        assert!(prim.tau < base.tau);
    }

    #[test]
    fn incompressible_data_degrades_to_base_minus_overhead() {
        let mut m = inputs();
        m.sigma_ho = 1.0;
        m.sigma_lo = 1.0;
        m.alpha2 = 0.0;
        m.metadata_bytes = 0.0;
        let base = base_write(&m);
        let prim = primacy_write(&m);
        // Same bytes moved; only preconditioner/codec overhead differs.
        assert!(prim.tau < base.tau);
        assert!(prim.tau > base.tau * 0.8);
    }

    #[test]
    fn read_model_mirrors_write() {
        let m = inputs();
        let r = primacy_read(&m);
        assert!(r.t_total > 0.0);
        assert!(r.tau > 0.0);
        // Faster read disk ⇒ read throughput above write throughput.
        assert!(r.tau > primacy_write(&m).tau);
    }

    #[test]
    fn vanilla_matches_hand_computation() {
        let m = inputs();
        let sigma = 0.9;
        let t_comp = 20e6;
        let out = vanilla_write(&m, sigma, t_comp);
        let c = m.chunk_bytes;
        let p = m.cluster;
        let expect_total = c / t_comp + 9.0 * c * sigma / p.theta + 8.0 * c * sigma / p.mu_write;
        assert!((out.t_total - expect_total).abs() < 1e-9);
    }

    #[test]
    fn metadata_overhead_can_flip_the_result() {
        // With ratio ~1 and large metadata, PRIMACY must lose vs base —
        // the msg_sppm effect (§IV-E).
        let mut m = inputs();
        m.sigma_ho = 1.0;
        m.sigma_lo = 1.0;
        m.metadata_bytes = 0.2 * m.chunk_bytes;
        let base = base_write(&m);
        let prim = primacy_write(&m);
        assert!(prim.tau < base.tau);
    }

    #[test]
    fn tau_scales_with_rho_until_network_saturates() {
        let mut m = inputs();
        m.cluster.rho = 4.0;
        let tau4 = base_write(&m).tau;
        m.cluster.rho = 8.0;
        let tau8 = base_write(&m).tau;
        // Disk-bound regime: doubling compute nodes cannot double the
        // end-to-end rate.
        assert!(tau8 < tau4 * 2.0);
    }
}
