//! Checkpoint-interval analysis: what faster checkpoints buy at scale.
//!
//! The paper's introduction motivates in-situ compression with the rising
//! checkpoint frequency required by falling MTBFs at exascale. This module
//! closes that loop: given a checkpoint commit time (from the §III model,
//! with or without compression) and a system MTBF, it computes the optimal
//! checkpoint interval (Young's first-order rule and Daly's higher-order
//! refinement) and the resulting machine efficiency, so compression's
//! end-to-end write speedup can be translated into saved machine time.

/// Young's optimal checkpoint interval: √(2·δ·M) for checkpoint cost δ and
/// MTBF M (both seconds).
pub fn young_interval(checkpoint_secs: f64, mtbf_secs: f64) -> f64 {
    assert!(checkpoint_secs > 0.0 && mtbf_secs > 0.0);
    (2.0 * checkpoint_secs * mtbf_secs).sqrt()
}

/// Daly's higher-order interval, accurate when δ is not ≪ M:
/// √(2δM)·(1 + ⅓·√(δ/2M) + (1/9)·(δ/2M)) − δ, clamped to be positive.
pub fn daly_interval(checkpoint_secs: f64, mtbf_secs: f64) -> f64 {
    assert!(checkpoint_secs > 0.0 && mtbf_secs > 0.0);
    let ratio = checkpoint_secs / (2.0 * mtbf_secs);
    let base = (2.0 * checkpoint_secs * mtbf_secs).sqrt();
    let refined = base * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - checkpoint_secs;
    refined.max(checkpoint_secs)
}

/// Expected fraction of machine time doing useful work for a given
/// checkpoint interval τ, checkpoint cost δ, restart cost R and MTBF M,
/// under the standard first-order waste model:
/// waste = δ/(τ+δ) + (τ+δ)/(2M) + R/M.
pub fn efficiency(
    interval_secs: f64,
    checkpoint_secs: f64,
    restart_secs: f64,
    mtbf_secs: f64,
) -> f64 {
    assert!(interval_secs > 0.0 && mtbf_secs > 0.0);
    let period = interval_secs + checkpoint_secs;
    let waste = checkpoint_secs / period + period / (2.0 * mtbf_secs) + restart_secs / mtbf_secs;
    (1.0 - waste).max(0.0)
}

/// Outcome of a checkpoint-strategy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPlan {
    /// Seconds to commit one checkpoint.
    pub checkpoint_secs: f64,
    /// Chosen interval between checkpoints (Daly).
    pub interval_secs: f64,
    /// Machine efficiency in [0, 1].
    pub efficiency: f64,
}

/// Plan checkpoints for a job: state of `state_bytes` per compute group,
/// committed at `write_bps` end-to-end (from the §III model), restarted at
/// `read_bps`, on a system with the given MTBF.
///
/// ```
/// use primacy_hpcsim::checkpoint::plan;
///
/// // 2.4 GB of state, 10 MB/s writes, 40 MB/s reads, 24 h MTBF.
/// let p = plan(2.4e9, 10e6, 40e6, 86_400.0);
/// assert!(p.interval_secs > p.checkpoint_secs);
/// assert!(p.efficiency > 0.9);
/// ```
pub fn plan(state_bytes: f64, write_bps: f64, read_bps: f64, mtbf_secs: f64) -> CheckpointPlan {
    let checkpoint_secs = state_bytes / write_bps;
    let restart_secs = state_bytes / read_bps;
    let interval_secs = daly_interval(checkpoint_secs, mtbf_secs);
    CheckpointPlan {
        checkpoint_secs,
        interval_secs,
        efficiency: efficiency(interval_secs, checkpoint_secs, restart_secs, mtbf_secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_hand_computation() {
        // δ = 50 s, M = 3600 s → √(2·50·3600) = 600 s.
        assert!((young_interval(50.0, 3600.0) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn daly_close_to_young_for_small_delta() {
        let (d, m) = (10.0, 86_400.0);
        let y = young_interval(d, m);
        let daly = daly_interval(d, m);
        assert!((daly - y).abs() / y < 0.05, "young {y}, daly {daly}");
    }

    #[test]
    fn efficiency_peaks_near_the_optimal_interval() {
        let (d, r, m) = (60.0, 30.0, 7200.0);
        let opt = daly_interval(d, m);
        let at_opt = efficiency(opt, d, r, m);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let off = efficiency(opt * factor, d, r, m);
            assert!(
                at_opt >= off - 1e-6,
                "interval {opt}×{factor}: {off} > {at_opt}"
            );
        }
    }

    #[test]
    fn faster_checkpoints_raise_efficiency() {
        // The whole point: compression shortens δ and thereby lifts
        // efficiency at every MTBF.
        for mtbf in [7200.0, 86_400.0, 604_800.0] {
            let slow = plan(2.4e9, 8e6, 32e6, mtbf); // null-case write speed
            let fast = plan(2.4e9, 10.4e6, 41e6, mtbf); // +30% from compression
            assert!(
                fast.efficiency > slow.efficiency,
                "mtbf {mtbf}: {} <= {}",
                fast.efficiency,
                slow.efficiency
            );
            assert!(fast.checkpoint_secs < slow.checkpoint_secs);
        }
    }

    #[test]
    fn shorter_mtbf_means_shorter_intervals() {
        let d = 120.0;
        assert!(daly_interval(d, 1800.0) < daly_interval(d, 86_400.0));
    }

    #[test]
    fn plan_fields_are_consistent() {
        let p = plan(1e12, 20e6, 80e6, 43_200.0);
        assert!((p.checkpoint_secs - 50_000.0).abs() < 1.0);
        assert!(p.interval_secs > 0.0);
        assert!((0.0..=1.0).contains(&p.efficiency));
    }
}
