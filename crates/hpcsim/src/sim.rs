//! Discrete-event simulation of the staging-I/O pipeline.
//!
//! This is the testbed substitute for the paper's Jaguar XK6 runs: ρ compute
//! nodes per I/O node produce one chunk per bulk-synchronous step, compress
//! it locally (in parallel), push it through the shared collective network
//! (a single server of capacity θ), and the I/O node writes it to its
//! filesystem share (a single server of capacity μ). Reads run the pipeline
//! backwards. Unlike the closed-form model (which adds phase times), the
//! simulation lets transfers overlap disk activity across chunks and adds
//! deterministic per-chunk jitter — producing the "empirical" counterpart to
//! the model's "theoretical" bars in Fig. 4.

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Compute nodes → disk (checkpoint write).
    Write,
    /// Disk → compute nodes (restart read).
    Read,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Compute nodes per I/O node (ρ).
    pub rho: usize,
    /// Bulk-synchronous steps to simulate.
    pub steps: usize,
    /// Original chunk size per node per step, bytes.
    pub chunk_bytes: f64,
    /// Bytes per chunk after compression (== `chunk_bytes` for the null
    /// case).
    pub compressed_bytes: f64,
    /// Per-node compression (or decompression) seconds per chunk; 0 for the
    /// null case.
    pub compute_secs: f64,
    /// Collective network capacity at the I/O node, bytes/s.
    pub theta: f64,
    /// Disk throughput for this direction, bytes/s.
    pub mu: f64,
    /// Direction of the run.
    pub direction: Direction,
    /// Relative jitter amplitude on per-chunk compute/transfer times
    /// (deterministic), e.g. 0.05 for ±5 %.
    pub jitter: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            rho: 8,
            steps: 16,
            chunk_bytes: 3.0 * 1024.0 * 1024.0,
            compressed_bytes: 3.0 * 1024.0 * 1024.0,
            compute_secs: 0.0,
            theta: 1.2e9,
            mu: 18e6,
            direction: Direction::Write,
            jitter: 0.05,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Wall-clock makespan of the whole run, seconds.
    pub makespan_secs: f64,
    /// End-to-end throughput: original bytes moved / makespan, bytes/s.
    pub tau_bps: f64,
    /// Fraction of the makespan the network server was busy.
    pub network_utilization: f64,
    /// Fraction of the makespan the disk server was busy.
    pub disk_utilization: f64,
    /// Fraction of the makespan the (parallel) compute phase accounts for.
    pub compute_fraction: f64,
}

/// Deterministic multiplicative jitter in `[1-amp, 1+amp]`.
struct Jitter {
    state: u64,
    amp: f64,
}

impl Jitter {
    fn new(amp: f64) -> Self {
        Self {
            state: 0x9E37_79B9_7F4A_7C15,
            amp,
        }
    }

    fn next(&mut self) -> f64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        1.0 + self.amp * (2.0 * u - 1.0)
    }
}

/// Run the simulation.
pub fn simulate(cfg: &SimConfig) -> SimResult {
    assert!(cfg.rho >= 1 && cfg.steps >= 1);
    let mut jitter = Jitter::new(cfg.jitter);
    let mut network_free = 0.0f64;
    let mut disk_free = 0.0f64;
    let mut network_busy = 0.0f64;
    let mut disk_busy = 0.0f64;
    let mut compute_busy = 0.0f64;
    let mut step_start = 0.0f64;
    let mut makespan = 0.0f64;

    for _step in 0..cfg.steps {
        let mut step_end = step_start;
        match cfg.direction {
            Direction::Write => {
                // Parallel compute phase, then FIFO through network and disk.
                let mut step_compute = 0.0f64;
                let mut ready: Vec<f64> = (0..cfg.rho)
                    .map(|_| {
                        let t = cfg.compute_secs * jitter.next();
                        step_compute = step_compute.max(t); // nodes run in parallel
                        step_start + t
                    })
                    .collect();
                ready.sort_by(f64::total_cmp);
                compute_busy += step_compute;
                for r in ready {
                    let xfer = cfg.compressed_bytes / cfg.theta * jitter.next();
                    let start = r.max(network_free);
                    network_free = start + xfer;
                    network_busy += xfer;
                    let write = cfg.compressed_bytes / cfg.mu * jitter.next();
                    let wstart = network_free.max(disk_free);
                    disk_free = wstart + write;
                    disk_busy += write;
                    step_end = step_end.max(disk_free);
                }
            }
            Direction::Read => {
                // Disk reads, transfers, then parallel decompression.
                for _node in 0..cfg.rho {
                    let read = cfg.compressed_bytes / cfg.mu * jitter.next();
                    let rstart = step_start.max(disk_free);
                    disk_free = rstart + read;
                    disk_busy += read;
                    let xfer = cfg.compressed_bytes / cfg.theta * jitter.next();
                    let xstart = disk_free.max(network_free);
                    network_free = xstart + xfer;
                    network_busy += xfer;
                    let decomp = cfg.compute_secs * jitter.next();
                    step_end = step_end.max(network_free + decomp);
                }
            }
        }
        // Bulk-synchronous barrier: the next step starts when every node's
        // chunk has fully landed.
        step_start = step_end;
        makespan = step_end;
    }

    let total_original = cfg.chunk_bytes * cfg.rho as f64 * cfg.steps as f64;
    SimResult {
        makespan_secs: makespan,
        tau_bps: total_original / makespan,
        network_utilization: (network_busy / makespan).min(1.0),
        disk_utilization: (disk_busy / makespan).min(1.0),
        compute_fraction: (compute_busy / makespan).min(1.0),
    }
}

/// Result of a multi-group run (an application spanning many I/O nodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGroupResult {
    /// Aggregate end-to-end throughput across all groups, bytes/s.
    pub aggregate_tau_bps: f64,
    /// What perfect linear scaling of the fastest group would give.
    pub ideal_tau_bps: f64,
    /// Aggregate / ideal: 1.0 means no straggler penalty.
    pub scaling_efficiency: f64,
    /// Ratio of slowest to fastest per-group makespan.
    pub straggler_spread: f64,
}

/// Simulate `groups` I/O groups running the same bulk-synchronous workload
/// with per-group speed variation of ±`group_jitter` (relative). The
/// application barriers across groups each step, so every step is gated by
/// its slowest group — the classic straggler effect that makes aggregate
/// I/O scale sub-linearly on real machines (and why the paper reports
/// per-I/O-node throughputs).
pub fn simulate_multi_group(cfg: &SimConfig, groups: usize, group_jitter: f64) -> MultiGroupResult {
    assert!(groups >= 1);
    let mut jitter = Jitter::new(group_jitter);
    // Per-group slowdown factors (deterministic).
    let factors: Vec<f64> = (0..groups).map(|_| jitter.next()).collect();
    let base = simulate(cfg);
    // A group slower by factor f takes f× as long per step; with a barrier
    // per step the step time is max over groups.
    let per_step = base.makespan_secs / cfg.steps as f64;
    let max_factor = factors.iter().cloned().fold(f64::MIN, f64::max);
    let min_factor = factors.iter().cloned().fold(f64::MAX, f64::min);
    let stepped_makespan = per_step * max_factor * cfg.steps as f64;
    let bytes_per_group = cfg.chunk_bytes * cfg.rho as f64 * cfg.steps as f64;
    let aggregate = bytes_per_group * groups as f64 / stepped_makespan;
    let ideal = bytes_per_group / (per_step * min_factor * cfg.steps as f64) * groups as f64;
    MultiGroupResult {
        aggregate_tau_bps: aggregate,
        ideal_tau_bps: ideal,
        scaling_efficiency: aggregate / ideal,
        straggler_spread: max_factor / min_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            jitter: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn null_write_is_disk_bound() {
        let cfg = base();
        let r = simulate(&cfg);
        // Disk is the slowest server by far; utilization should be ~1.
        assert!(
            r.disk_utilization > 0.95,
            "disk util {}",
            r.disk_utilization
        );
        // Throughput approaches μ (the single disk drains everything).
        assert!(
            (r.tau_bps - cfg.mu).abs() / cfg.mu < 0.1,
            "tau {} vs mu {}",
            r.tau_bps,
            cfg.mu
        );
    }

    #[test]
    fn compression_raises_write_throughput() {
        let null = simulate(&base());
        let compressed = simulate(&SimConfig {
            compressed_bytes: 2.4 * 1024.0 * 1024.0, // ratio 1.25
            compute_secs: 0.03,                      // 100 MB/s compressor
            ..base()
        });
        assert!(
            compressed.tau_bps > null.tau_bps * 1.1,
            "{} vs {}",
            compressed.tau_bps,
            null.tau_bps
        );
    }

    #[test]
    fn slow_compressor_hurts_despite_ratio() {
        let null = simulate(&base());
        let slow = simulate(&SimConfig {
            compressed_bytes: 1.5 * 1024.0 * 1024.0,
            compute_secs: 3.0, // ~1 MB/s compressor: dominates everything
            ..base()
        });
        assert!(slow.tau_bps < null.tau_bps);
    }

    #[test]
    fn read_direction_uses_disk_then_network() {
        let r = simulate(&SimConfig {
            direction: Direction::Read,
            mu: 90e6,
            ..base()
        });
        assert!(r.tau_bps > 0.0);
        assert!(r.disk_utilization > 0.5);
    }

    #[test]
    fn jitter_changes_little_but_something() {
        let smooth = simulate(&base());
        let noisy = simulate(&SimConfig {
            jitter: 0.05,
            ..base()
        });
        let rel = (noisy.tau_bps - smooth.tau_bps).abs() / smooth.tau_bps;
        assert!(rel < 0.1, "jitter moved throughput by {rel}");
        assert_ne!(noisy.tau_bps, smooth.tau_bps);
    }

    #[test]
    fn sim_tracks_model_shape() {
        // The simulation must agree with the closed-form model within ~25 %
        // for the disk-bound null case (the paper's model-vs-empirical
        // comparison).
        use crate::model::{base_write, ClusterParams, ModelInputs};
        let cfg = base();
        let sim = simulate(&cfg);
        let model = base_write(&ModelInputs {
            cluster: ClusterParams {
                rho: cfg.rho as f64,
                theta: cfg.theta,
                mu_write: cfg.mu,
                mu_read: 90e6,
            },
            chunk_bytes: cfg.chunk_bytes,
            metadata_bytes: 0.0,
            alpha1: 0.25,
            alpha2: 0.0,
            sigma_ho: 1.0,
            sigma_lo: 1.0,
            t_prec: 1e12,
            t_comp: 1e12,
            t_decomp: 1e12,
            t_prec_inv: 1e12,
        });
        let rel = (sim.tau_bps - model.tau).abs() / model.tau;
        assert!(rel < 0.25, "sim {} vs model {}", sim.tau_bps, model.tau);
    }

    #[test]
    fn multi_group_scales_with_straggler_penalty() {
        let cfg = base();
        let one = simulate_multi_group(&cfg, 1, 0.0);
        assert!((one.scaling_efficiency - 1.0).abs() < 1e-9);
        assert!((one.straggler_spread - 1.0).abs() < 1e-9);

        let many_uniform = simulate_multi_group(&cfg, 64, 0.0);
        assert!((many_uniform.scaling_efficiency - 1.0).abs() < 1e-9);
        // 64 identical groups move 64× the data in the same time.
        assert!((many_uniform.aggregate_tau_bps / one.aggregate_tau_bps - 64.0).abs() < 1e-6);

        let many_jittered = simulate_multi_group(&cfg, 64, 0.15);
        assert!(many_jittered.scaling_efficiency < 1.0);
        assert!(many_jittered.straggler_spread > 1.05);
        assert!(many_jittered.aggregate_tau_bps < many_uniform.aggregate_tau_bps);
    }

    #[test]
    fn more_steps_converge_throughput() {
        let short = simulate(&SimConfig { steps: 2, ..base() });
        let long = simulate(&SimConfig {
            steps: 64,
            ..base()
        });
        let rel = (short.tau_bps - long.tau_bps).abs() / long.tau_bps;
        assert!(rel < 0.2, "throughput unstable across steps: {rel}");
    }
}
