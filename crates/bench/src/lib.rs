//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the PRIMACY
//! paper (see DESIGN.md's experiment index) and prints paper-vs-measured
//! values so EXPERIMENTS.md can be filled in by running them.

pub mod harness;
pub mod json;

use json::Value;
use primacy_core::StageTimings;
use primacy_datagen::DatasetId;

/// Number of doubles per dataset used by the bench binaries. 2²¹ elements =
/// 16 MiB — several 3 MB chunks, large enough for stable ratios, small
/// enough that the full 20-dataset sweep finishes in minutes. Override with
/// the `PRIMACY_BENCH_ELEMS` environment variable.
pub fn dataset_elements() -> usize {
    std::env::var("PRIMACY_BENCH_ELEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 21)
}

/// Generate a dataset at the bench size, as raw little-endian bytes.
pub fn dataset_bytes(id: DatasetId) -> Vec<u8> {
    id.generate_bytes(dataset_elements())
}

/// Generate a dataset at the bench size, as doubles.
pub fn dataset_values(id: DatasetId) -> Vec<f64> {
    id.generate(dataset_elements())
}

/// One measured-vs-paper record, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Experiment identifier (e.g. "table3/gts_phi_l/zlib_cr").
    pub key: String,
    /// Value the paper reports.
    pub paper: f64,
    /// Value this build measures.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation of measured from paper.
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            return f64::NAN;
        }
        (self.measured - self.paper) / self.paper
    }

    /// Hand-rolled JSON form (the in-tree substitute for a serde derive).
    pub fn to_value(&self) -> Value {
        Value::object([
            ("key", Value::from(self.key.as_str())),
            ("paper", Value::from(self.paper)),
            ("measured", Value::from(self.measured)),
            ("deviation", Value::from(self.deviation())),
        ])
    }
}

/// Machine-readable results of one bench binary.
///
/// Every binary under `src/bin/` records its headline numbers here next to
/// the human-readable table it prints; when the `PRIMACY_BENCH_JSON`
/// environment variable is set, [`Report::finish`] writes the collected
/// records to that path (or to stdout for `-`) as a JSON document built by
/// [`json`]. `tests/bench_smoke.rs` round-trips this output through the
/// parser.
#[derive(Debug)]
pub struct Report {
    experiment: String,
    records: Vec<Value>,
}

impl Report {
    /// Start a report for the named experiment (conventionally the binary
    /// name, e.g. `table3_compression`).
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            records: Vec::new(),
        }
    }

    /// Record one scalar metric.
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.records.push(Value::object([
            ("key", Value::from(key.into())),
            ("value", Value::from(value)),
        ]));
    }

    /// Record a measured-vs-paper comparison.
    pub fn push_comparison(&mut self, c: &Comparison) {
        self.records.push(c.to_value());
    }

    /// Record a per-stage timing breakdown: one `{prefix}/stage/{name}`
    /// record per pipeline stage (seconds), in canonical stage order, plus
    /// `{prefix}/stage_total_s`. This is how `BENCH_*.json` gains a
    /// per-stage trajectory across runs.
    pub fn push_stages(&mut self, prefix: &str, timings: &StageTimings) {
        for (stage, d) in timings.by_stage() {
            self.push(format!("{prefix}/stage/{stage}"), d.as_secs_f64());
        }
        self.push(
            format!("{prefix}/stage_total_s"),
            timings.total().as_secs_f64(),
        );
    }

    /// The full report as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("experiment", Value::from(self.experiment.as_str())),
            ("records", Value::Array(self.records.clone())),
        ])
    }

    /// Emit the report if `PRIMACY_BENCH_JSON` requests it. Call last in
    /// `main`; panics on an unwritable path so CI fails loudly.
    pub fn finish(self) {
        let Ok(dest) = std::env::var("PRIMACY_BENCH_JSON") else {
            return;
        };
        let text = self.to_value().to_json();
        if dest == "-" {
            println!("{text}");
        } else {
            std::fs::write(&dest, text)
                // lint: allow(panic) -- documented contract: CI must fail loudly on an unwritable report path
                .unwrap_or_else(|e| panic!("writing bench JSON to {dest}: {e}"));
        }
    }
}

/// Format a MB/s number compactly.
pub fn mbps(x: f64) -> String {
    format!("{x:8.2}")
}

/// Print a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Render a sparkline-style ASCII bar for quick visual comparison in
/// terminal output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max > 0.0) {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width);
    for _ in 0..filled {
        s.push('#');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_deviation() {
        let c = Comparison {
            key: "x".into(),
            paper: 2.0,
            measured: 2.5,
        };
        assert!((c.deviation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }

    #[test]
    fn push_stages_emits_canonical_records() {
        use std::time::Duration;
        let mut r = Report::new("test");
        let timings = StageTimings {
            split: Duration::from_millis(1),
            codec: Duration::from_millis(2),
            ..Default::default()
        };
        r.push_stages("table3/demo", &timings);
        let v = r.to_value();
        let records = v.get("records").and_then(Value::as_array).unwrap();
        // Six stages + the total.
        assert_eq!(records.len(), 7);
        let keys: Vec<&str> = records
            .iter()
            .map(|rec| rec.get("key").and_then(Value::as_str).unwrap())
            .collect();
        assert!(keys.contains(&"table3/demo/stage/split"));
        assert!(keys.contains(&"table3/demo/stage/deflate"));
        assert!(keys.contains(&"table3/demo/stage_total_s"));
        let total = records
            .iter()
            .find(|rec| rec.get("key").and_then(Value::as_str) == Some("table3/demo/stage_total_s"))
            .and_then(|rec| rec.get("value"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!((total - 0.003).abs() < 1e-9);
    }

    #[test]
    fn dataset_helpers_agree() {
        std::env::set_var("PRIMACY_BENCH_ELEMS", "1000");
        assert_eq!(dataset_elements(), 1000);
        let v = dataset_values(DatasetId::ObsTemp);
        let b = dataset_bytes(DatasetId::ObsTemp);
        assert_eq!(v.len(), 1000);
        assert_eq!(b.len(), 8000);
        std::env::remove_var("PRIMACY_BENCH_ELEMS");
    }
}
