//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the PRIMACY
//! paper (see DESIGN.md's experiment index) and prints paper-vs-measured
//! values so EXPERIMENTS.md can be filled in by running them.

use primacy_datagen::DatasetId;
use serde::Serialize;

/// Number of doubles per dataset used by the bench binaries. 2²¹ elements =
/// 16 MiB — several 3 MB chunks, large enough for stable ratios, small
/// enough that the full 20-dataset sweep finishes in minutes. Override with
/// the `PRIMACY_BENCH_ELEMS` environment variable.
pub fn dataset_elements() -> usize {
    std::env::var("PRIMACY_BENCH_ELEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 21)
}

/// Generate a dataset at the bench size, as raw little-endian bytes.
pub fn dataset_bytes(id: DatasetId) -> Vec<u8> {
    id.generate_bytes(dataset_elements())
}

/// Generate a dataset at the bench size, as doubles.
pub fn dataset_values(id: DatasetId) -> Vec<f64> {
    id.generate(dataset_elements())
}

/// One measured-vs-paper record, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Experiment identifier (e.g. "table3/gts_phi_l/zlib_cr").
    pub key: String,
    /// Value the paper reports.
    pub paper: f64,
    /// Value this build measures.
    pub measured: f64,
}

impl Comparison {
    /// Relative deviation of measured from paper.
    pub fn deviation(&self) -> f64 {
        if self.paper == 0.0 {
            return f64::NAN;
        }
        (self.measured - self.paper) / self.paper
    }
}

/// Format a MB/s number compactly.
pub fn mbps(x: f64) -> String {
    format!("{x:8.2}")
}

/// Print a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Render a sparkline-style ASCII bar for quick visual comparison in
/// terminal output.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max > 0.0) {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width);
    for _ in 0..filled {
        s.push('#');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_deviation() {
        let c = Comparison {
            key: "x".into(),
            paper: 2.0,
            measured: 2.5,
        };
        assert!((c.deviation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }

    #[test]
    fn dataset_helpers_agree() {
        std::env::set_var("PRIMACY_BENCH_ELEMS", "1000");
        assert_eq!(dataset_elements(), 1000);
        let v = dataset_values(DatasetId::ObsTemp);
        let b = dataset_bytes(DatasetId::ObsTemp);
        assert_eq!(v.len(), 1000);
        assert_eq!(b.len(), 8000);
        std::env::remove_var("PRIMACY_BENCH_ELEMS");
    }
}
