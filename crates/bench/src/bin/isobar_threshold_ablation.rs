//! §II-G ablation: the ISOBAR compressibility threshold.
//!
//! ISOBAR only sends mantissa byte-columns to the codec when their sampled
//! entropy is below a threshold. Sweeping the threshold exposes the paper's
//! trade-off: at 8 bits everything is compressed (vanilla behaviour — best
//! possible ratio, worst throughput); as the threshold drops, the codec
//! skips random columns for large speedups at almost no ratio cost; too low
//! and genuinely compressible columns are stored raw, losing ratio.

// Config tweaks read more clearly as sequential assignments here.

use primacy_bench::{dataset_bytes, Report};
use primacy_core::{IsobarConfig, PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;

fn main() {
    let mut report = Report::new("isobar_threshold_ablation");
    println!("SII-G ablation: ISOBAR entropy threshold sweep");
    println!(
        "{:<16} {:>9} | {:>8} {:>9} {:>9} {:>7}",
        "dataset", "threshold", "CR", "compMB/s", "decMB/s", "alpha2"
    );

    for id in [
        DatasetId::NumPlasma, // heavily truncated: several compressible columns
        DatasetId::FlashGamc, // moderately truncated
        DatasetId::GtsPhiL,   // fully random mantissa
        DatasetId::MsgSppm,   // exact repetition everywhere
    ] {
        let bytes = dataset_bytes(id);
        for threshold in [2.0, 6.0, 7.0, 7.9, 8.0] {
            let cfg = PrimacyConfig {
                isobar: IsobarConfig {
                    entropy_threshold_bits: threshold,
                    // 8 bits can never be exceeded: force-everything mode.
                    enabled: threshold < 8.0,
                    ..Default::default()
                },
                ..Default::default()
            };
            let c = PrimacyCompressor::new(cfg);
            let (out, stats) = c.compress_bytes_with_stats(&bytes).expect("compress");
            let t0 = std::time::Instant::now();
            let back = c.decompress_bytes(&out).expect("roundtrip");
            let dsecs = t0.elapsed().as_secs_f64();
            assert_eq!(back, bytes);
            println!(
                "{:<16} {:>9.1} | {:>8.3} {:>9.1} {:>9.1} {:>7.2}",
                id.name(),
                threshold,
                stats.ratio(),
                stats.throughput_mbps(),
                bytes.len() as f64 / 1e6 / dsecs,
                stats.isobar_compressible_fraction
            );
            report.push(
                format!("{}/threshold_{threshold}/cr", id.name()),
                stats.ratio(),
            );
        }
        println!();
    }
    println!("reading: threshold 8.0 = compress everything (vanilla); the paper's design point");
    println!("keeps ratio within a hair of vanilla while compressing several times faster on");
    println!("random-mantissa datasets (alpha2 ~ 0).");
    report.finish();
}
