//! §V deep-dive: predictive coders live and die by dimensional correlation.
//!
//! The paper: "These algorithms rely heavily on dimensional correlation of
//! data and predict poorly in turbulent data … varying data organization can
//! have a significantly negative impact." This bench makes that concrete
//! with our fpzip-class codec: a genuinely 2-D field is compressed with the
//! Lorenzo predictor at the right dimensionality, the wrong dimensionality,
//! and after a layout permutation — against PRIMACY and FPC, whose behaviour
//! barely moves.

use primacy_bench::Report;
use primacy_codecs::fpc::Fpc;
use primacy_codecs::fpz::{Fpz, Grid};
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::permute;

/// A smooth 2-D field with a small additive noise floor.
fn field_2d(nx: usize, ny: usize, noise_amp: f64) -> Vec<f64> {
    let mut x = 0xFEED_5EEDu64;
    (0..nx * ny)
        .map(|i| {
            let (u, v) = ((i % nx) as f64, (i / nx) as f64);
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let noise = ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * noise_amp;
            100.0 * (u * 0.02).sin() * (v * 0.015).cos() + noise
        })
        .collect()
}

fn cr(compressed_len: usize, values: &[f64]) -> f64 {
    values.len() as f64 * 8.0 / compressed_len as f64
}

fn main() {
    let mut report = Report::new("fpz_dimensionality");
    let (nx, ny) = (1024, 512);
    println!("SV deep-dive: Lorenzo predictor vs data organization ({nx}x{ny} field)\n");
    println!(
        "{:<28} | {:>9} {:>9} {:>9} {:>9}",
        "treatment", "fpz-2D", "fpz-1D", "fpc", "primacy"
    );

    let primacy = PrimacyCompressor::new(PrimacyConfig::default());
    let fpc = Fpc::default();

    for (label, noise) in [
        ("smooth (noise 1e-9)", 1e-9),
        ("turbulent (noise 1e-1)", 1e-1),
    ] {
        let values = field_2d(nx, ny, noise);
        let rows: [(&str, Vec<f64>); 2] = [
            ("original layout", values.clone()),
            ("permuted layout", permute(&values)),
        ];
        for (layout, data) in rows {
            let fpz2 = Fpz::with_grid(Grid::D2(nx, ny))
                .compress_f64(&data)
                .expect("compress");
            let fpz1 = Fpz::with_grid(Grid::D1)
                .compress_f64(&data)
                .expect("compress");
            let f = fpc.compress_f64(&data).expect("compress");
            let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
            let p = primacy.compress_bytes(&bytes).expect("compress");
            println!(
                "{:<28} | {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                format!("{label}, {layout}"),
                cr(fpz2.len(), &data),
                cr(fpz1.len(), &data),
                cr(f.len(), &data),
                bytes.len() as f64 / p.len() as f64,
            );
            report.push(format!("{label}/{layout}/fpz2_cr"), cr(fpz2.len(), &data));
            report.push(format!("{label}/{layout}/fpz1_cr"), cr(fpz1.len(), &data));
            report.push(format!("{label}/{layout}/fpc_cr"), cr(f.len(), &data));
            report.push(
                format!("{label}/{layout}/primacy_cr"),
                bytes.len() as f64 / p.len() as f64,
            );
        }
    }

    println!("\nreading (paper's claims): the 2-D Lorenzo predictor dominates on the smooth");
    println!("field in its native layout, degrades at the wrong dimensionality, and");
    println!("collapses under permutation and turbulence — while PRIMACY, which only uses");
    println!("byte frequencies, is nearly layout-invariant (SIV-G) and wins the permuted");
    println!("cases (paper: beats fpzip on 95% and fpc on 100% of permuted datasets).");
    report.finish();
}
