//! §IV-B claim: "PRIMACY can also perform effectively on floating-point
//! data of higher precisions due to the nature of its mapping scheme."
//!
//! This bench runs the Table III comparison on single-precision versions of
//! the datasets with the f32 configuration (1 exponent byte to the ID
//! mapper, 3 mantissa bytes to ISOBAR) — the analogous split at the other
//! common precision.

use primacy_bench::{dataset_elements, Report};
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::time::Instant;

fn main() {
    let mut report = Report::new("f32_precision");
    let n = dataset_elements();
    let zlib = CodecKind::Zlib.build();
    let primacy = PrimacyCompressor::new(PrimacyConfig::f32());

    println!("single-precision sweep ({n} f32 values per dataset, hi_bytes = 1)\n");
    println!(
        "{:<16} | {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "dataset", "zCR", "pCR", "pCR/zCR", "zCTP", "pCTP"
    );
    let mut wins = 0;
    let mut gains = Vec::new();
    for id in DatasetId::ALL {
        let bytes = id.generate_f32_bytes(n);

        let t0 = Instant::now();
        let z = zlib.compress(&bytes).expect("compress");
        let z_secs = t0.elapsed().as_secs_f64();
        assert_eq!(zlib.decompress(&z).expect("roundtrip"), bytes);

        let t0 = Instant::now();
        let p = primacy.compress_bytes(&bytes).expect("compress");
        let p_secs = t0.elapsed().as_secs_f64();
        assert_eq!(primacy.decompress_bytes(&p).expect("roundtrip"), bytes);

        let zcr = bytes.len() as f64 / z.len() as f64;
        let pcr = bytes.len() as f64 / p.len() as f64;
        if pcr > zcr {
            wins += 1;
        }
        gains.push(pcr / zcr - 1.0);
        println!(
            "{:<16} | {:>8.3} {:>8.3} {:>+7.1}% | {:>9.1} {:>9.1}",
            id.name(),
            zcr,
            pcr,
            (pcr / zcr - 1.0) * 100.0,
            bytes.len() as f64 / 1e6 / z_secs,
            bytes.len() as f64 / 1e6 / p_secs,
        );
        report.push(format!("{}/zlib_cr", id.name()), zcr);
        report.push(format!("{}/primacy_cr", id.name()), pcr);
    }
    let mean = gains.iter().sum::<f64>() / gains.len() as f64 * 100.0;
    println!("\nf32 shape check: PRIMACY CR wins {wins}/20, mean CR gain {mean:+.1}%");
    println!("(paper only asserts the scheme generalizes across precisions; the f64");
    println!("numbers in Table III remain the primary comparison)");
    report.push("cr_wins".to_string(), f64::from(wins));
    report.push("mean_cr_gain_pct".to_string(), mean);
    report.finish();
}
