//! Table III: compression ratio (original and permuted layouts) and
//! (de)compression throughput, zlib vs PRIMACY, on all 20 datasets.
//!
//! Run with `cargo run --release -p primacy-bench --bin table3_compression`.
//! Columns mirror the paper's table; each measured value is printed next to
//! the paper's number so deviations are visible at a glance. Expectations
//! (paper): PRIMACY wins CR on 19/20 datasets (all but msg_sppm), wins CTP
//! and DTP by 3–4× on average, and keeps its CR advantage on permuted data.

use primacy_bench::{dataset_elements, mbps, Comparison, Report};
use primacy_codecs::{Codec, CodecKind};
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::{permute, DatasetId};
use std::time::Instant;

struct Row {
    name: &'static str,
    zlib_cr: f64,
    primacy_cr: f64,
    zlib_lin_cr: f64,
    primacy_lin_cr: f64,
    zlib_ctp: f64,
    primacy_ctp: f64,
    zlib_dtp: f64,
    primacy_dtp: f64,
}

fn measure_codec(codec: &dyn Codec, bytes: &[u8]) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let comp = codec.compress(bytes).expect("compress");
    let c_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let back = codec.decompress(&comp).expect("decompress");
    let d_secs = t0.elapsed().as_secs_f64();
    assert_eq!(back, bytes, "codec roundtrip failed");
    let n = bytes.len() as f64;
    (n / comp.len() as f64, n / 1e6 / c_secs, n / 1e6 / d_secs)
}

fn measure_primacy(
    compressor: &PrimacyCompressor,
    bytes: &[u8],
) -> (f64, f64, f64, primacy_core::StageTimings) {
    let t0 = Instant::now();
    let (comp, stats) = compressor
        .compress_bytes_with_stats(bytes)
        .expect("compress");
    let c_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let back = compressor.decompress_bytes(&comp).expect("decompress");
    let d_secs = t0.elapsed().as_secs_f64();
    assert_eq!(back, bytes, "primacy roundtrip failed");
    let n = bytes.len() as f64;
    (
        n / comp.len() as f64,
        n / 1e6 / c_secs,
        n / 1e6 / d_secs,
        stats.timings,
    )
}

fn main() {
    let n = dataset_elements();
    let zlib = CodecKind::Zlib.build();
    let primacy = PrimacyCompressor::new(PrimacyConfig::default());

    println!("Table III — zlib vs PRIMACY on 20 synthetic stand-in datasets ({n} doubles each)");
    println!("measured value | (paper value) — absolute throughputs differ from the 2012 Opteron;");
    println!("orderings and ratios are the comparison target\n");
    println!(
        "{:<14} | {:>7}{:>8} {:>7}{:>8} | {:>7}{:>8} {:>7}{:>8} | {:>9}{:>9} {:>9}{:>9} | {:>9}{:>9} {:>9}{:>9}",
        "dataset", "zCR", "(p)", "pCR", "(p)", "zCRperm", "(p)", "pCRperm", "(p)",
        "zCTP", "(p)", "pCTP", "(p)", "zDTP", "(p)", "pDTP", "(p)"
    );

    let mut report = Report::new("table3_compression");
    let mut rows = Vec::new();
    for id in DatasetId::ALL {
        let values = id.generate(n);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let permuted = permute(&values);
        let perm_bytes: Vec<u8> = permuted.iter().flat_map(|v| v.to_le_bytes()).collect();

        let (zcr, zctp, zdtp) = measure_codec(zlib.as_ref(), &bytes);
        let (pcr, pctp, pdtp, timings) = measure_primacy(&primacy, &bytes);
        let (zlcr, _, _) = measure_codec(zlib.as_ref(), &perm_bytes);
        let (plcr, _, _, _) = measure_primacy(&primacy, &perm_bytes);
        report.push_stages(&format!("table3/{}", id.name()), &timings);

        let row = Row {
            name: id.name(),
            zlib_cr: zcr,
            primacy_cr: pcr,
            zlib_lin_cr: zlcr,
            primacy_lin_cr: plcr,
            zlib_ctp: zctp,
            primacy_ctp: pctp,
            zlib_dtp: zdtp,
            primacy_dtp: pdtp,
        };
        let p = id.spec().paper;
        for (metric, measured, paper) in [
            ("zlib_cr", row.zlib_cr, p.zlib_cr),
            ("primacy_cr", row.primacy_cr, p.primacy_cr),
            ("zlib_lin_cr", row.zlib_lin_cr, p.zlib_lin_cr),
            ("primacy_lin_cr", row.primacy_lin_cr, p.primacy_lin_cr),
        ] {
            report.push_comparison(&Comparison {
                key: format!("table3/{}/{metric}", row.name),
                paper,
                measured,
            });
        }
        println!(
            "{:<14} | {:>7.2}({:>6.2}) {:>7.2}({:>6.2}) | {:>7.2}({:>6.2}) {:>7.2}({:>6.2}) | {}({:>7.1}) {}({:>7.1}) | {}({:>7.1}) {}({:>7.1})",
            row.name,
            row.zlib_cr, p.zlib_cr,
            row.primacy_cr, p.primacy_cr,
            row.zlib_lin_cr, p.zlib_lin_cr,
            row.primacy_lin_cr, p.primacy_lin_cr,
            mbps(row.zlib_ctp), p.zlib_ctp,
            mbps(row.primacy_ctp), p.primacy_ctp,
            mbps(row.zlib_dtp), p.zlib_dtp,
            mbps(row.primacy_dtp), p.primacy_dtp,
        );
        rows.push(row);
    }

    // Paper-shape summary (§IV-E/F and abstract claims).
    let cr_wins = rows.iter().filter(|r| r.primacy_cr > r.zlib_cr).count();
    let lin_wins = rows
        .iter()
        .filter(|r| r.primacy_lin_cr > r.zlib_lin_cr)
        .count();
    let mean_cr_gain: f64 = rows
        .iter()
        .map(|r| r.primacy_cr / r.zlib_cr - 1.0)
        .sum::<f64>()
        / rows.len() as f64;
    let mean_ctp_x: f64 =
        rows.iter().map(|r| r.primacy_ctp / r.zlib_ctp).sum::<f64>() / rows.len() as f64;
    let mean_dtp_x: f64 =
        rows.iter().map(|r| r.primacy_dtp / r.zlib_dtp).sum::<f64>() / rows.len() as f64;
    let sppm = rows.iter().find(|r| r.name == "msg_sppm").unwrap();

    println!();
    println!("shape checks vs paper:");
    println!(
        "  PRIMACY CR wins:            {cr_wins}/20 measured   (paper: 19/20, msg_sppm loses)"
    );
    println!(
        "  msg_sppm CR:                PRIMACY {:.2} vs zlib {:.2} (paper: 7.17 vs 7.42 — PRIMACY loses)",
        sppm.primacy_cr, sppm.zlib_cr
    );
    println!(
        "  mean CR improvement:        {:+.1}%          (paper: ~13%, up to 25%)",
        mean_cr_gain * 100.0
    );
    println!("  mean compression speedup:   {mean_ctp_x:.1}x           (paper: 3-4x)");
    println!("  mean decompression speedup: {mean_dtp_x:.1}x           (paper: 3-4x)");
    println!("  permuted-layout CR wins:    {lin_wins}/20 measured   (paper: 19/20)");
    report.push("summary/cr_wins", cr_wins as f64);
    report.push("summary/lin_wins", lin_wins as f64);
    report.push("summary/mean_cr_gain", mean_cr_gain);
    report.push("summary/mean_ctp_speedup", mean_ctp_x);
    report.push("summary/mean_dtp_speedup", mean_dtp_x);
    report.finish();
}
