//! Design ablation: how many high-order bytes should the ID mapper own?
//!
//! The paper fixes the split at 2 bytes for doubles ("the exponent portion
//! (within first 2 bytes)", §II) and 1 byte would be the analogue for f32.
//! This bench sweeps `hi_bytes` ∈ {1, 2} for f64 to show why 2 is right:
//! one byte leaves half the exponent (and the top mantissa nibble's
//! regularity) in the incompressible low-order partition, while two bytes
//! capture the full skewed-distribution region at a tiny index cost.

use primacy_bench::{dataset_bytes, dataset_elements, Report};
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;

fn main() {
    let mut report = Report::new("split_width_ablation");
    println!(
        "split-width ablation: hi_bytes for f64 pipelines ({} doubles/dataset)\n",
        dataset_elements()
    );
    println!(
        "{:<16} {:>9} | {:>8} {:>10} {:>8}",
        "dataset", "hi_bytes", "CR", "compMB/s", "alpha2"
    );
    for id in [
        DatasetId::GtsPhiL,
        DatasetId::FlashVelx,
        DatasetId::NumPlasma,
        DatasetId::ObsTemp,
        DatasetId::ObsError,
    ] {
        let bytes = dataset_bytes(id);
        for hi_bytes in [1usize, 2] {
            let cfg = PrimacyConfig {
                hi_bytes,
                ..Default::default()
            };
            let c = PrimacyCompressor::new(cfg);
            let (out, stats) = c.compress_bytes_with_stats(&bytes).expect("compress");
            assert_eq!(c.decompress_bytes(&out).expect("roundtrip"), bytes);
            println!(
                "{:<16} {:>9} | {:>8.3} {:>10.1} {:>8.2}",
                id.name(),
                hi_bytes,
                stats.ratio(),
                stats.throughput_mbps(),
                stats.isobar_compressible_fraction
            );
            report.push(format!("{}/hi{hi_bytes}/cr", id.name()), stats.ratio());
            report.push(
                format!("{}/hi{hi_bytes}/comp_mbps", id.name()),
                stats.throughput_mbps(),
            );
        }
        println!();
    }
    println!("reading: ratios are close — with hi_bytes = 1 ISOBAR usually rescues the");
    println!("orphaned second byte as a compressible column (alpha2 rises) — but the");
    println!("paper's hi_bytes = 2 is consistently faster: the frequency-ranked ID path");
    println!("compresses that byte more cheaply than the generic ISOBAR+codec path.");
    report.finish();
}
