//! Figure 4: end-to-end write (a) and read (b) throughput on a staging
//! cluster for PRIMACY / zlib / lzo, theoretical (analytical model) and
//! empirical (discrete-event simulation with measured codec rates), on
//! num_comet, flash_velx and obs_temp — plus the null (no compression)
//! baseline the percentages are quoted against.
//!
//! Expected shape (paper, §IV-C/D): writes — PRIMACY ≈ +27 % over null
//! (up to +38 %), zlib ≈ +8 %, lzo ≈ +10 %; reads — PRIMACY ≈ +19 % (up to
//! +22 %), zlib ≈ −7 %, lzo ≈ −4 %; theoretical ≈ empirical throughout.

use primacy_bench::{dataset_bytes, Report};
use primacy_codecs::CodecKind;
use primacy_core::PrimacyConfig;
use primacy_datagen::DatasetId;
use primacy_hpcsim::{CompressionMethod, Scenario};

fn main() {
    let mut report = Report::new("fig4_end_to_end");
    let scenario = Scenario::default();
    let datasets = [
        DatasetId::NumComet,
        DatasetId::FlashVelx,
        DatasetId::ObsTemp,
    ];
    let methods = [
        CompressionMethod::Primacy(PrimacyConfig::default()),
        CompressionMethod::Vanilla(CodecKind::Zlib),
        CompressionMethod::Vanilla(CodecKind::Lzr),
        CompressionMethod::Null,
    ];

    println!(
        "Figure 4 — end-to-end staging throughput (rho={}, chunk={} MB, theta={} GB/s, mu_w={} MB/s, mu_r={} MB/s)",
        scenario.cluster.rho,
        scenario.chunk_bytes / (1024 * 1024),
        scenario.cluster.theta / 1e9,
        scenario.cluster.mu_write / 1e6,
        scenario.cluster.mu_read / 1e6,
    );
    println!(
        "P=PRIMACY Z=zlib L=lzr N=null; T=theoretical (model) E=empirical (simulation); MB/s\n"
    );

    for id in datasets {
        let data = dataset_bytes(id);
        println!("{}:", id.name());
        println!(
            "  {:<8} {:>8} {:>8} {:>8} {:>8}   {:>6}",
            "method", "writeT", "writeE", "readT", "readE", "CR"
        );
        let mut null_write = 0.0;
        let mut null_read = 0.0;
        let mut rows = Vec::new();
        for m in &methods {
            let e = scenario.evaluate(m, &data).expect("measurement failed");
            if matches!(m, CompressionMethod::Null) {
                null_write = e.write_empirical_mbps;
                null_read = e.read_empirical_mbps;
            }
            rows.push(e);
        }
        for e in &rows {
            println!(
                "  {:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   {:>6.2}",
                e.method,
                e.write_theoretical_mbps,
                e.write_empirical_mbps,
                e.read_theoretical_mbps,
                e.read_empirical_mbps,
                e.ratio
            );
        }
        for e in &rows {
            report.push(
                format!("{}/{}/write_mbps", id.name(), e.method),
                e.write_empirical_mbps,
            );
            report.push(
                format!("{}/{}/read_mbps", id.name(), e.method),
                e.read_empirical_mbps,
            );
        }
        for e in &rows {
            if e.method == "null" {
                continue;
            }
            println!(
                "  {:<8} write {:+5.1}% vs null, read {:+5.1}% vs null",
                e.method,
                (e.write_empirical_mbps / null_write - 1.0) * 100.0,
                (e.read_empirical_mbps / null_read - 1.0) * 100.0,
            );
        }
        println!();
    }

    println!("paper reference (3-dataset averages): PRIMACY write +27% / read +19%;");
    println!("zlib write +8% / read -7%; lzo write +10% / read -4%;");
    println!("theoretical and empirical values consistent for every method.");
    report.finish();
}
