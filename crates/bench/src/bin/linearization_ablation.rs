//! §IV-H ablation: byte-level organization of the transformed IDs.
//!
//! Two questions the paper answers and one it implies:
//! 1. Column vs row linearization of the ID matrix — paper: column order is
//!    worth 8–10 % compression ratio and ~20 % compression throughput on
//!    the identification values.
//! 2. Whether the *frequency ranking* itself matters — we compare the
//!    frequency-ranked ID assignment against an identity mapping (raw
//!    exponent bytes, split only) by disabling the remap via a value-order
//!    index.
//! 3. Mantissa-byte linearization is data-dependent and roughly a wash
//!    (paper) — exercised implicitly through ISOBAR's column grouping.

// Config tweaks read more clearly as sequential assignments here.

use primacy_bench::{dataset_bytes, dataset_elements, Report};
use primacy_codecs::{Codec, CodecKind};
use primacy_core::freq::FreqTable;
use primacy_core::idmap::IdMap;
use primacy_core::linearize::to_columns;
use primacy_core::split::split_hi_lo;
use primacy_core::{Linearization, PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::time::Instant;

/// Compress just the ID bytes of one dataset under a given treatment,
/// returning (ratio, MB/s).
fn id_bytes_experiment(
    bytes: &[u8],
    ranked_ids: bool,
    column: bool,
    codec: &dyn Codec,
) -> (f64, f64) {
    let (mut hi, _lo) = split_hi_lo(bytes, 8, 2).expect("aligned input");
    let n = hi.len() / 2;
    if ranked_ids {
        let freq = FreqTable::from_hi_matrix(&hi, 2);
        let map = IdMap::from_freq(&freq, 2).expect("sane domain");
        map.encode_hi(&mut hi).expect("all sequences mapped");
    }
    let data = if column { to_columns(&hi, n, 2) } else { hi };
    let t0 = Instant::now();
    let comp = codec.compress(&data).expect("compress");
    let secs = t0.elapsed().as_secs_f64();
    (
        data.len() as f64 / comp.len() as f64,
        data.len() as f64 / 1e6 / secs,
    )
}

fn main() {
    let codec = CodecKind::Zlib.build();
    println!(
        "SIV-H ablation on the ID bytes ({} doubles/dataset)",
        dataset_elements()
    );
    println!(
        "{:<16} | {:>7} {:>7} {:>7} | {:>8} {:>8} | {:>8} {:>8}",
        "dataset", "rawCR", "rowCR", "colCR", "rowMB/s", "colMB/s", "colCR/row", "colTP/row"
    );
    let mut cr_gains = Vec::new();
    let mut tp_gains = Vec::new();
    for id in [
        DatasetId::GtsPhiL,
        DatasetId::GtsChkpZeon,
        DatasetId::FlashVelx,
        DatasetId::MsgSp,
        DatasetId::NumPlasma,
        DatasetId::ObsTemp,
        DatasetId::ObsError,
        DatasetId::NumComet,
    ] {
        let bytes = dataset_bytes(id);
        let (raw_cr, _) = id_bytes_experiment(&bytes, false, false, codec.as_ref());
        let (row_cr, row_tp) = id_bytes_experiment(&bytes, true, false, codec.as_ref());
        let (col_cr, col_tp) = id_bytes_experiment(&bytes, true, true, codec.as_ref());
        let cr_gain = col_cr / row_cr - 1.0;
        let tp_gain = col_tp / row_tp - 1.0;
        cr_gains.push(cr_gain);
        tp_gains.push(tp_gain);
        println!(
            "{:<16} | {:>7.2} {:>7.2} {:>7.2} | {:>8.1} {:>8.1} | {:>+7.1}% {:>+7.1}%",
            id.name(),
            raw_cr,
            row_cr,
            col_cr,
            row_tp,
            col_tp,
            cr_gain * 100.0,
            tp_gain * 100.0
        );
    }
    let mut report = Report::new("linearization_ablation");
    let mean_cr = cr_gains.iter().sum::<f64>() / cr_gains.len() as f64 * 100.0;
    let mean_tp = tp_gains.iter().sum::<f64>() / tp_gains.len() as f64 * 100.0;
    println!(
        "\ncolumn vs row on ID values: CR {mean_cr:+.1}% (paper: +8-10%), throughput {mean_tp:+.1}% (paper: ~+20%)"
    );
    println!("rawCR column shows the split-only baseline: the frequency ranking itself, not just the split, carries the gain.");
    report.push("summary/column_cr_gain_pct", mean_cr);
    report.push("summary/column_tp_gain_pct", mean_tp);

    // End-to-end check through the full pipeline.
    println!("\nfull-pipeline linearization check:");
    for id in [DatasetId::GtsPhiL, DatasetId::ObsTemp] {
        let bytes = dataset_bytes(id);
        for lin in [Linearization::Row, Linearization::Column] {
            let cfg = PrimacyConfig {
                linearization: lin,
                ..Default::default()
            };
            let c = PrimacyCompressor::new(cfg);
            let (out, stats) = c.compress_bytes_with_stats(&bytes).expect("compress");
            assert_eq!(
                c.decompress_bytes(&out).expect("roundtrip").len(),
                bytes.len()
            );
            println!(
                "  {:<14} {:?}: CR {:.3}, pipeline {:.1} MB/s",
                id.name(),
                lin,
                stats.ratio(),
                stats.throughput_mbps()
            );
            report.push(format!("{}/{lin:?}/cr", id.name()), stats.ratio());
        }
    }
    report.finish();
}
