//! End-to-end compression/decompression throughput in MB/s — per pipeline
//! stage and per backend codec — on a corpus set spanning the compressibility
//! spectrum.
//!
//! This is the throughput trajectory the ROADMAP's "as fast as the hardware
//! allows" goal is measured against: `BENCH_throughput.json` (written when
//! `PRIMACY_BENCH_JSON` is set) records one `throughput/...` key per metric so
//! successive runs can be diffed. The paper sells PRIMACY on compression
//! *speed* as much as ratio (§III, Table III); ISOBAR's premise is that
//! hard-to-compress bytes should cost near-zero CPU — the `random` corpus row
//! is the direct probe of that claim.
//!
//! Run with `cargo run --release -p primacy-bench --bin throughput`.
//! `-- --smoke` runs a tiny-input self-check (used by ci.sh): it validates the
//! report schema, asserts every throughput is a sane positive number, and
//! gates every per-corpus compression ratio against the checked-in
//! `results/ratio-baseline.json` (±0.5% relative). Speed is machine-dependent
//! and stays report-only; ratios are deterministic, so a drift means the
//! encoder's output actually changed — refresh the baseline intentionally
//! with `-- --write-ratio-baseline` when a ratio improvement is the point of
//! a change.
//!
//! Stage MB/s figures divide the corpus size by that stage's wall time, so
//! they read as "the throughput the pipeline would have if only this stage
//! existed" — the bottleneck stage is the one closest to the end-to-end row.

use primacy_bench::json::{self, Value};
use primacy_bench::{dataset_elements, harness, mbps, rule, Report};
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyCompressor, PrimacyConfig, StageTimings, STAGES};
use primacy_datagen::{DatasetId, Rng};

/// One benchmark corpus: a name for report keys plus its raw element bytes.
struct Corpus {
    name: &'static str,
    bytes: Vec<u8>,
}

/// Corpus set: two dataset stand-ins with structure for the preconditioner to
/// exploit, one quantized-tail dataset, and a fully random corpus — the
/// "incompressible-heavy" case where every low-order byte is noise and the
/// encoder's only winning move is to get out of the way quickly.
fn corpora(elements: usize) -> Vec<Corpus> {
    let mut rng = Rng::seed_from_u64(0x7470_5f72_616e_646f); // "tp_rando"
    let mut random = vec![0u8; elements * 8];
    rng.fill_bytes(&mut random);
    vec![
        Corpus {
            name: "gts_phi_l",
            bytes: DatasetId::GtsPhiL.generate_bytes(elements),
        },
        Corpus {
            name: "num_plasma",
            bytes: DatasetId::NumPlasma.generate_bytes(elements),
        },
        Corpus {
            name: "obs_error",
            bytes: DatasetId::ObsError.generate_bytes(elements),
        },
        Corpus {
            name: "random",
            bytes: random,
        },
    ]
}

/// Codecs measured standalone (fed the raw corpus, no preconditioner).
const CODECS: [CodecKind; 3] = [CodecKind::Zlib, CodecKind::Lzr, CodecKind::Bwt];

/// Checked-in per-corpus ratio baseline consumed by the `--smoke` gate.
const RATIO_BASELINE: &str = "results/ratio-baseline.json";
/// Relative drift allowed before the ratio gate fails. Compression is
/// deterministic, so this only absorbs float formatting, not real variance.
const RATIO_TOLERANCE: f64 = 0.005;

fn per_stage_mbps(
    report: &mut Report,
    corpus: &str,
    dir: &str,
    bytes: usize,
    runs: &[StageTimings],
) {
    // Per-stage MEDIAN over the instrumented passes: a single pass is at the
    // mercy of frequency scaling and cache state, and the stage rows are what
    // the throughput-regression comparisons read, so they get the same
    // robustness treatment the end-to-end rows get from `harness::measure`.
    let stages = runs[0].by_stage();
    for (idx, (stage, _)) in stages.iter().enumerate() {
        let mut secs: Vec<f64> = runs
            .iter()
            .map(|t| t.by_stage()[idx].1.as_secs_f64())
            .collect();
        secs.sort_by(f64::total_cmp);
        let median = secs[secs.len() / 2];
        // A stage that took no measurable time reports its throughput as the
        // whole-corpus-per-tick sentinel rather than infinity.
        let rate = bytes as f64 / 1e6 / median.max(1e-9);
        report.push(
            format!("throughput/{corpus}/stage/{stage}/{dir}_mbps"),
            rate,
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let write_baseline = std::env::args().any(|a| a == "--write-ratio-baseline");
    let elements = if smoke || write_baseline {
        // Small enough for CI, large enough to span several deflate blocks
        // and exercise every stage. The baseline is written at the same size
        // the smoke gate measures, so the two always compare like for like.
        1 << 14
    } else {
        dataset_elements()
    };
    if std::env::var_os("PRIMACY_BENCH_SAMPLES").is_none() {
        // Throughput rows are medians; a handful of samples is plenty and
        // keeps the full 16 MiB × 4-corpus sweep in CI-friendly time.
        std::env::set_var(
            "PRIMACY_BENCH_SAMPLES",
            if smoke || write_baseline { "1" } else { "5" },
        );
    }

    let primacy = PrimacyCompressor::new(PrimacyConfig::default());
    let mut report = Report::new("throughput");
    let mut ratios: Vec<(String, f64)> = Vec::new();

    println!("End-to-end throughput, MB/s of uncompressed bytes ({elements} doubles per corpus)");
    println!("primacy = full pipeline (split/freq/idmap/linearize/deflate/isobar + CRC)\n");
    println!(
        "{:<11} {:>7} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "corpus", "ratio", "p.comp", "p.decomp", "zlib.c", "zlib.d", "lzr.c", "lzr.d"
    );
    rule(84);

    for corpus in corpora(elements) {
        let bytes = &corpus.bytes;
        let n = bytes.len() as u64;

        // End-to-end pipeline throughput (median over samples).
        let c_stats = harness::measure(|| primacy.compress_bytes(bytes).expect("compress"));
        let compressed = primacy.compress_bytes(bytes).expect("compress");
        let d_stats =
            harness::measure(|| primacy.decompress_bytes(&compressed).expect("decompress"));
        assert_eq!(
            primacy.decompress_bytes(&compressed).expect("decompress"),
            *bytes,
            "pipeline roundtrip failed on {}",
            corpus.name
        );
        let ratio = n as f64 / compressed.len() as f64;
        let name = corpus.name;
        report.push(
            format!("throughput/{name}/primacy/compress_mbps"),
            c_stats.mbps(n),
        );
        report.push(
            format!("throughput/{name}/primacy/decompress_mbps"),
            d_stats.mbps(n),
        );
        report.push(format!("throughput/{name}/primacy/ratio"), ratio);
        ratios.push((format!("{name}/primacy"), ratio));

        // Per-stage breakdown from several instrumented passes per direction
        // (same sample count as the end-to-end rows; medians in both).
        let stage_samples = std::env::var("PRIMACY_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let c_runs: Vec<_> = (0..stage_samples)
            .map(|_| {
                let (_, cs) = primacy.compress_bytes_with_stats(bytes).expect("compress");
                cs.timings
            })
            .collect();
        per_stage_mbps(&mut report, name, "compress", bytes.len(), &c_runs);
        let d_runs: Vec<_> = (0..stage_samples)
            .map(|_| {
                let (_, ds) = primacy
                    .decompress_bytes_with_stats(&compressed)
                    .expect("decompress");
                ds.timings
            })
            .collect();
        per_stage_mbps(&mut report, name, "decompress", bytes.len(), &d_runs);

        // Standalone backend codecs on the same raw bytes.
        let mut codec_cells: Vec<(f64, f64)> = Vec::new();
        for kind in CODECS {
            let codec = kind.build();
            let cc = harness::measure(|| codec.compress(bytes).expect("compress"));
            let comp = codec.compress(bytes).expect("compress");
            let dc = harness::measure(|| codec.decompress(&comp).expect("decompress"));
            report.push(
                format!("throughput/{name}/codec/{kind}/compress_mbps"),
                cc.mbps(n),
            );
            report.push(
                format!("throughput/{name}/codec/{kind}/decompress_mbps"),
                dc.mbps(n),
            );
            report.push(
                format!("throughput/{name}/codec/{kind}/ratio"),
                n as f64 / comp.len() as f64,
            );
            ratios.push((format!("{name}/codec/{kind}"), n as f64 / comp.len() as f64));
            if codec_cells.len() < 2 {
                codec_cells.push((cc.mbps(n), dc.mbps(n)));
            }
        }

        println!(
            "{:<11} {:>7.3} | {} {} | {} {} | {} {}",
            name,
            ratio,
            mbps(c_stats.mbps(n)),
            mbps(d_stats.mbps(n)),
            mbps(codec_cells[0].0),
            mbps(codec_cells[0].1),
            mbps(codec_cells[1].0),
            mbps(codec_cells[1].1),
        );
    }

    let value = report.to_value();
    if write_baseline {
        write_ratio_baseline(elements, &ratios);
        println!(
            "\nratio baseline: wrote {} entries to {RATIO_BASELINE}",
            ratios.len()
        );
    } else if smoke {
        validate(&value);
        check_ratio_baseline(elements, &ratios);
        println!("\nsmoke: schema, throughput floors and ratio baseline OK");
    }
    report.finish();
}

/// Serialize the measured ratios in the same `records` shape the bench
/// reports use, so the baseline stays readable by [`Value::get`] alone.
fn write_ratio_baseline(elements: usize, ratios: &[(String, f64)]) {
    let records: Vec<Value> = ratios
        .iter()
        .map(|(key, ratio)| {
            Value::object([
                ("key", Value::from(key.as_str())),
                ("value", Value::from(*ratio)),
            ])
        })
        .collect();
    let doc = Value::object([
        ("experiment", Value::from("ratio-baseline")),
        ("elements", Value::from(elements as f64)),
        ("records", Value::Array(records)),
    ]);
    std::fs::write(RATIO_BASELINE, doc.to_json())
        .unwrap_or_else(|e| panic!("writing {RATIO_BASELINE}: {e}"));
}

/// The `--smoke` ratio gate: every measured per-corpus ratio must sit within
/// [`RATIO_TOLERANCE`] of the checked-in baseline, and the corpus/codec set
/// itself must match — an added or removed corpus is a baseline refresh, not
/// a silent pass.
fn check_ratio_baseline(elements: usize, ratios: &[(String, f64)]) {
    let refresh = "refresh with: cargo run --release -p primacy-bench --bin throughput -- --write-ratio-baseline";
    let text = std::fs::read_to_string(RATIO_BASELINE)
        .unwrap_or_else(|e| panic!("reading {RATIO_BASELINE}: {e}; {refresh}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("parsing {RATIO_BASELINE}: {e}"));
    let base_elems = doc.get("elements").and_then(Value::as_f64).unwrap_or(0.0);
    assert_eq!(
        base_elems as usize, elements,
        "{RATIO_BASELINE} was written at {base_elems} elements, smoke runs {elements}; {refresh}"
    );
    let records = doc
        .get("records")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{RATIO_BASELINE} has no records array"));
    let baseline: Vec<(&str, f64)> = records
        .iter()
        .map(|rec| {
            let key = rec
                .get("key")
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("{RATIO_BASELINE}: record without a key"));
            let value = rec
                .get("value")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{RATIO_BASELINE}: {key} has no numeric value"));
            (key, value)
        })
        .collect();

    println!(
        "\nratio gate vs {RATIO_BASELINE} (tolerance ±{:.1}%):",
        RATIO_TOLERANCE * 100.0
    );
    let mut failures = 0usize;
    for (key, measured) in ratios {
        let Some(&(_, expected)) = baseline.iter().find(|(k, _)| k == key) else {
            println!("  {key:<24} measured {measured:.4} | MISSING from baseline");
            failures += 1;
            continue;
        };
        let drift = (measured - expected) / expected;
        let ok = drift.abs() <= RATIO_TOLERANCE;
        println!(
            "  {key:<24} measured {measured:.4} | baseline {expected:.4} | drift {:+.3}% {}",
            drift * 100.0,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            failures += 1;
        }
    }
    for (key, _) in &baseline {
        if !ratios.iter().any(|(k, _)| k == key) {
            println!("  {key:<24} in baseline but not measured");
            failures += 1;
        }
    }
    assert_eq!(
        failures, 0,
        "ratio gate failed on {failures} entries; {refresh}"
    );
}

/// Smoke-mode gate: the JSON document has the expected shape and every
/// throughput is a positive finite number. Absolute numbers are report-only.
fn validate(v: &Value) {
    assert_eq!(
        v.get("experiment").and_then(Value::as_str),
        Some("throughput"),
        "report is missing its experiment name"
    );
    let records = v
        .get("records")
        .and_then(Value::as_array)
        .expect("report has a records array");
    let mut mbps_keys = 0usize;
    for rec in records {
        let key = rec
            .get("key")
            .and_then(Value::as_str)
            .expect("record has a key");
        let value = rec
            .get("value")
            .and_then(Value::as_f64)
            .expect("record has a numeric value");
        assert!(
            value.is_finite() && value > 0.0,
            "{key} = {value} violates the >0 floor"
        );
        if key.ends_with("_mbps") {
            mbps_keys += 1;
        }
    }
    // 4 corpora × (2 end-to-end + 12 stage + 6 codec) MB/s records.
    let expected = 4 * (2 + 2 * STAGES.len() + 2 * CODECS.len());
    assert_eq!(
        mbps_keys, expected,
        "expected {expected} *_mbps records, found {mbps_keys}"
    );
}
