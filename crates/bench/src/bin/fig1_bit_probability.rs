//! Figure 1: probability of the most frequent bit value at each of the 64
//! bit positions of a double, for four representative datasets
//! (GTS_phi, num_plasma, obs_temp, msg_sweep3D in the paper).
//!
//! Expected shape (paper): p close to 1.0 over the sign/exponent bits
//! (first ~12 positions, i.e. the first 2 bytes), decaying to p ≈ 0.5 over
//! the deep mantissa — the "signal head, noise tail" that motivates the
//! 2+6 byte split.

use primacy_bench::{bar, dataset_values, rule, Report};
use primacy_core::analysis::bit_probability;
use primacy_datagen::DatasetId;

fn main() {
    let datasets = [
        DatasetId::GtsPhiL,
        DatasetId::NumPlasma,
        DatasetId::ObsTemp,
        DatasetId::MsgSweep3d,
    ];
    let series: Vec<(DatasetId, Vec<f64>)> = datasets
        .iter()
        .map(|&id| (id, bit_probability(&dataset_values(id))))
        .collect();

    println!("Figure 1 — P(most frequent bit value) per bit position (bit 0 = sign)");
    println!(
        "{:>4} | {:>11} {:>11} {:>11} {:>11} |",
        "bit", "gts_phi_l", "num_plasma", "obs_temp", "msg_sweep3d"
    );
    rule(64);
    for pos in 0..64 {
        let marker = match pos {
            0 => "  <- sign",
            1..=11 => "  <- exponent",
            12..=15 => "  <- mantissa (in hi bytes)",
            _ => "",
        };
        print!("{pos:>4} |");
        for (_, p) in &series {
            print!(" {:>11.4}", p[pos]);
        }
        println!(" |{marker}");
    }

    println!("\nprofile (## = p above 0.5, width 20 = p 1.0):");
    for (id, p) in &series {
        println!("{}:", id);
        for byte in 0..8 {
            let mean: f64 = p[byte * 8..(byte + 1) * 8].iter().sum::<f64>() / 8.0;
            println!(
                "  byte {byte}: p={mean:.3} {}",
                bar((mean - 0.5) * 2.0, 1.0, 20)
            );
        }
    }

    // Quantitative shape check against the paper's claim.
    let mut report = Report::new("fig1_bit_probability");
    for (id, p) in &series {
        let head: f64 = p[..12].iter().sum::<f64>() / 12.0;
        let tail: f64 = p[48..].iter().sum::<f64>() / 16.0;
        println!(
            "{id}: head(sign+exp) p={head:.3}, deep-mantissa p={tail:.3}  (paper: head ~0.9-1.0, tail ~0.5)"
        );
        report.push(format!("{id}/head_p"), head);
        report.push(format!("{id}/tail_p"), tail);
    }
    report.finish();
}
