//! §V related-work comparison: PRIMACY vs the predictive floating-point
//! compressors FPC and fpzip (our FPZ), on original and permuted layouts.
//!
//! Expected shape (paper): on original layouts PRIMACY beats FPC on 80 %
//! and fpzip on 65 % of datasets by compression ratio, with ~3× / ~2× the
//! compression throughput; on *permuted* data the predictors collapse
//! (their dimensional correlation is gone) and PRIMACY wins on 100 % /
//! 95 % with ~14 % / ~9 % better CR.

use primacy_bench::{dataset_elements, Report};
use primacy_codecs::{fpc::Fpc, fpz::Fpz, Codec};
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::{permute, DatasetId};
use std::time::Instant;

struct Meas {
    cr: f64,
    ctp: f64,
}

fn measure(codec: &dyn Codec, bytes: &[u8]) -> Meas {
    let t0 = Instant::now();
    let comp = codec.compress(bytes).expect("compress");
    let secs = t0.elapsed().as_secs_f64();
    let back = codec.decompress(&comp).expect("decompress");
    assert_eq!(back, bytes);
    Meas {
        cr: bytes.len() as f64 / comp.len() as f64,
        ctp: bytes.len() as f64 / 1e6 / secs,
    }
}

fn measure_primacy(c: &PrimacyCompressor, bytes: &[u8]) -> Meas {
    let t0 = Instant::now();
    let comp = c.compress_bytes(bytes).expect("compress");
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        c.decompress_bytes(&comp).expect("roundtrip"),
        bytes.to_vec()
    );
    Meas {
        cr: bytes.len() as f64 / comp.len() as f64,
        ctp: bytes.len() as f64 / 1e6 / secs,
    }
}

fn main() {
    let n = dataset_elements();
    let fpc = Fpc::default();
    let fpz = Fpz::default();
    let primacy = PrimacyCompressor::new(PrimacyConfig::default());

    println!("SV — PRIMACY vs FPC vs FPZ (fpzip-class), {n} doubles per dataset");
    println!(
        "{:<16} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "dataset",
        "primCR",
        "fpcCR",
        "fpzCR",
        "primCTP",
        "fpcCTP",
        "fpzCTP",
        "permP",
        "permFPC",
        "permFPZ"
    );

    let (mut fpc_wins, mut fpz_wins) = (0, 0);
    let (mut fpc_perm_wins, mut fpz_perm_wins) = (0, 0);
    let mut ctp_fpc_ratio = Vec::new();
    let mut ctp_fpz_ratio = Vec::new();

    for id in DatasetId::ALL {
        let values = id.generate(n);
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let permuted: Vec<u8> = permute(&values)
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();

        let p = measure_primacy(&primacy, &bytes);
        let f = measure(&fpc, &bytes);
        let z = measure(&fpz, &bytes);
        let pp = measure_primacy(&primacy, &permuted);
        let fp = measure(&fpc, &permuted);
        let zp = measure(&fpz, &permuted);

        if p.cr > f.cr {
            fpc_wins += 1;
        }
        if p.cr > z.cr {
            fpz_wins += 1;
        }
        if pp.cr > fp.cr {
            fpc_perm_wins += 1;
        }
        if pp.cr > zp.cr {
            fpz_perm_wins += 1;
        }
        ctp_fpc_ratio.push(p.ctp / f.ctp);
        ctp_fpz_ratio.push(p.ctp / z.ctp);

        println!(
            "{:<16} | {:>7.2} {:>7.2} {:>7.2} | {:>8.1} {:>8.1} {:>8.1} | {:>7.2} {:>7.2} {:>7.2}",
            id.name(),
            p.cr,
            f.cr,
            z.cr,
            p.ctp,
            f.ctp,
            z.ctp,
            pp.cr,
            fp.cr,
            zp.cr
        );
    }

    let mut report = Report::new("related_fpc_fpzip");
    report.push("summary/cr_wins_vs_fpc", fpc_wins as f64);
    report.push("summary/cr_wins_vs_fpz", fpz_wins as f64);
    report.push("summary/perm_cr_wins_vs_fpc", fpc_perm_wins as f64);
    report.push("summary/perm_cr_wins_vs_fpz", fpz_perm_wins as f64);
    let mean_fpc_x = ctp_fpc_ratio.iter().sum::<f64>() / 20.0;
    let mean_fpz_x = ctp_fpz_ratio.iter().sum::<f64>() / 20.0;
    println!("\nshape checks vs paper (SV):");
    println!("  PRIMACY CR beats FPC:          {fpc_wins}/20   (paper: 16/20 = 80%)");
    println!("  PRIMACY CR beats fpzip-class:  {fpz_wins}/20   (paper: 13/20 = 65%)");
    println!("  permuted: beats FPC:           {fpc_perm_wins}/20   (paper: 20/20)");
    println!("  permuted: beats fpzip-class:   {fpz_perm_wins}/20   (paper: 19/20)");
    println!("  mean CTP vs FPC:               {mean_fpc_x:.1}x    (paper: ~3x)");
    println!("  mean CTP vs fpzip-class:       {mean_fpz_x:.1}x    (paper: ~2x)");
    report.push("summary/mean_ctp_vs_fpc", mean_fpc_x);
    report.push("summary/mean_ctp_vs_fpz", mean_fpz_x);
    report.finish();
}
