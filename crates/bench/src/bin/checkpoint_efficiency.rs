//! Introduction-motivation experiment: translate PRIMACY's end-to-end write
//! gains into machine efficiency under optimal (Daly) checkpointing.
//!
//! The paper opens with the exascale checkpoint problem — more frequent
//! checkpoints as MTBF falls, against a fixed I/O budget. Combining the §III
//! model's write/read throughputs with the Young/Daly optimal-interval
//! theory shows what the 25–38 % write speedups are ultimately worth: a
//! higher fraction of machine time spent computing, at every failure rate.

use primacy_bench::{dataset_bytes, Report};
use primacy_codecs::CodecKind;
use primacy_core::PrimacyConfig;
use primacy_datagen::DatasetId;
use primacy_hpcsim::checkpoint::{daly_interval, plan};
use primacy_hpcsim::{CompressionMethod, Scenario};

fn main() {
    let mut report = Report::new("checkpoint_efficiency");
    let scenario = Scenario::default();
    let data = dataset_bytes(DatasetId::FlashVelx);

    // End-to-end throughputs per strategy, measured through the simulator.
    let methods = [
        ("null", CompressionMethod::Null),
        ("zlib", CompressionMethod::Vanilla(CodecKind::Zlib)),
        (
            "primacy",
            CompressionMethod::Primacy(PrimacyConfig::default()),
        ),
    ];
    let rates: Vec<(&str, f64, f64)> = methods
        .iter()
        .map(|(name, m)| {
            let e = scenario.evaluate(m, &data).expect("measurement failed");
            (
                *name,
                e.write_empirical_mbps * 1e6,
                e.read_empirical_mbps * 1e6,
            )
        })
        .collect();

    // A 2.4 GB checkpoint per I/O group (the state behind one I/O node).
    let state_bytes = 2.4e9;
    println!(
        "checkpoint planning for {:.1} GB of state per I/O group (flash_velx profile)\n",
        state_bytes / 1e9
    );
    println!(
        "{:<9} {:>10} {:>10} | {:>12} {:>12} {:>12}",
        "method", "writeMB/s", "readMB/s", "delta(s)", "interval(s)", "efficiency"
    );
    for mtbf_hours in [2.0, 24.0, 168.0] {
        let mtbf = mtbf_hours * 3600.0;
        println!("MTBF = {mtbf_hours} h:");
        let mut best: Option<(&str, f64)> = None;
        for &(name, wbps, rbps) in &rates {
            let p = plan(state_bytes, wbps, rbps, mtbf);
            println!(
                "{:<9} {:>10.2} {:>10.2} | {:>12.0} {:>12.0} {:>11.1}%",
                name,
                wbps / 1e6,
                rbps / 1e6,
                p.checkpoint_secs,
                p.interval_secs,
                p.efficiency * 100.0
            );
            report.push(
                format!("mtbf_{mtbf_hours}h/{name}/efficiency"),
                p.efficiency,
            );
            if best.map(|(_, e)| p.efficiency > e).unwrap_or(true) {
                best = Some((name, p.efficiency));
            }
        }
        let (winner, _) = best.unwrap();
        println!("  -> best strategy: {winner}\n");
    }

    // The Daly interval itself, for reference across delta.
    println!("optimal interval vs checkpoint cost (MTBF 24 h):");
    for delta in [30.0, 120.0, 600.0, 3600.0] {
        println!(
            "  delta {delta:>6.0} s -> interval {:>7.0} s",
            daly_interval(delta, 86_400.0)
        );
    }
    println!("\nreading: compression shortens delta, which both shortens the optimal");
    println!("interval (less lost work per failure) and cuts checkpoint overhead —");
    println!("compounding the raw write-throughput gain into machine-time savings.");
    report.finish();
}
