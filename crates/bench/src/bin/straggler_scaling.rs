//! Extension experiment: aggregate scaling across I/O groups.
//!
//! The paper reports per-I/O-node throughputs on a machine with thousands of
//! nodes. This bench uses the multi-group simulator to show what happens
//! when the whole application barriers across many I/O groups with realistic
//! per-group speed variation — and that compression's per-group gain
//! survives (and its shorter steps slightly dampen absolute straggler
//! losses).

use primacy_bench::{dataset_bytes, Report};
use primacy_core::PrimacyConfig;
use primacy_datagen::DatasetId;
use primacy_hpcsim::measure_primacy;
use primacy_hpcsim::sim::{simulate_multi_group, Direction, SimConfig};

fn main() {
    let mut report = Report::new("straggler_scaling");
    let data = dataset_bytes(DatasetId::FlashVelx);
    let rates = measure_primacy(&PrimacyConfig::default(), &data).expect("measurement failed");
    let chunk = 3.0 * 1024.0 * 1024.0;

    let base = SimConfig {
        rho: 8,
        steps: 16,
        chunk_bytes: chunk,
        compressed_bytes: chunk,
        compute_secs: 0.0,
        theta: 1.2e9,
        mu: 8e6,
        direction: Direction::Write,
        jitter: 0.04,
    };
    let primacy = SimConfig {
        compressed_bytes: chunk / rates.ratio,
        compute_secs: chunk / rates.compress_bps,
        ..base
    };

    println!(
        "aggregate write scaling across I/O groups (flash_velx rates, CR {:.2})\n",
        rates.ratio
    );
    println!(
        "{:>7} {:>8} | {:>12} {:>10} {:>10} | {:>12} {:>10} {:>10}",
        "groups", "jitter", "null GB/s", "scale-eff", "spread", "prim GB/s", "scale-eff", "spread"
    );
    for &groups in &[1usize, 16, 64, 256, 1024] {
        for &gj in &[0.0, 0.05, 0.15] {
            let n = simulate_multi_group(&base, groups, gj);
            let p = simulate_multi_group(&primacy, groups, gj);
            println!(
                "{:>7} {:>8.2} | {:>12.3} {:>9.1}% {:>10.3} | {:>12.3} {:>9.1}% {:>10.3}",
                groups,
                gj,
                n.aggregate_tau_bps / 1e9,
                n.scaling_efficiency * 100.0,
                n.straggler_spread,
                p.aggregate_tau_bps / 1e9,
                p.scaling_efficiency * 100.0,
                p.straggler_spread,
            );
            let key = format!("g{groups}/j{gj}");
            report.push(format!("{key}/null_gbps"), n.aggregate_tau_bps / 1e9);
            report.push(format!("{key}/primacy_gbps"), p.aggregate_tau_bps / 1e9);
            report.push(format!("{key}/primacy_scaling_eff"), p.scaling_efficiency);
        }
        println!();
    }
    println!("reading: per-group gains carry straight through to aggregate throughput;");
    println!("straggler spread grows with group count and jitter, costing both strategies");
    println!("the same relative scaling efficiency — compression neither fixes nor worsens");
    println!("the barrier penalty, it just moves more science through the same machine.");
    report.push("compression_ratio".to_string(), rates.ratio);
    report.finish();
}
