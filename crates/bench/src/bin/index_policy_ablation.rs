//! §II-F ablation: per-chunk index vs correlation-gated index reuse.
//!
//! The paper builds an index for every chunk and sketches, as future work,
//! reusing the previous chunk's index when the frequency vectors correlate.
//! Both policies are implemented here; this bench measures what the reuse
//! policy buys (fewer indexes, less frequency-analysis work) and what it
//! costs (compression ratio when the stale index fits the new chunk less
//! well), across a sweep of correlation thresholds.
//!
//! Expected shape (paper's hypothesis): stationary datasets keep most of
//! their ratio with far fewer indexes; drifting datasets need low
//! thresholds to reuse at all, and aggressive reuse costs ratio.

// Config tweaks read more clearly as sequential assignments here.

use primacy_bench::{dataset_bytes, Report};
use primacy_core::{IndexPolicy, PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;

fn main() {
    let mut report = Report::new("index_policy_ablation");
    // Small chunks make index counts visible at bench sizes.
    let chunk_bytes = 256 * 1024;
    println!(
        "SII-F ablation: index policy (chunk = {} KiB)",
        chunk_bytes / 1024
    );
    println!(
        "{:<16} {:>12} | {:>8} {:>8} {:>10} {:>10}",
        "dataset", "policy", "CR", "MB/s", "indexes", "chunks"
    );

    for id in [
        DatasetId::GtsPhiL,     // stationary smooth field
        DatasetId::GtsChkpZeon, // drifting random walk
        DatasetId::NumComet,    // wide-exponent log-uniform
        DatasetId::ObsTemp,     // stationary with seasonal modes
    ] {
        let bytes = dataset_bytes(id);
        let mut policies: Vec<(String, IndexPolicy)> =
            vec![("per-chunk".into(), IndexPolicy::PerChunk)];
        for threshold in [0.99, 0.9, 0.5] {
            policies.push((
                format!("reuse@{threshold}"),
                IndexPolicy::Reuse {
                    correlation_threshold: threshold,
                },
            ));
        }
        for (label, policy) in policies {
            let cfg = PrimacyConfig {
                chunk_bytes,
                index_policy: policy,
                ..Default::default()
            };
            let c = PrimacyCompressor::new(cfg);
            let (out, stats) = c.compress_bytes_with_stats(&bytes).expect("compress");
            assert_eq!(
                c.decompress_bytes(&out).expect("roundtrip"),
                bytes,
                "{} {label}",
                id.name()
            );
            println!(
                "{:<16} {:>12} | {:>8.3} {:>8.1} {:>10} {:>10}",
                id.name(),
                label,
                stats.ratio(),
                stats.throughput_mbps(),
                stats.own_index_chunks,
                stats.chunks
            );
            report.push(format!("{}/{label}/cr", id.name()), stats.ratio());
            report.push(
                format!("{}/{label}/own_index_chunks", id.name()),
                stats.own_index_chunks as f64,
            );
        }
        println!();
    }
    println!("reading: fewer indexes at equal CR = reuse pays off; CR drop = stale index misfit (the data-dependence SII-F warns about).");
    report.finish();
}
