//! §V quantification: how much the Welton et al. costless-compression model
//! (the paper's reference \[22\]) over-predicts end-to-end throughput.
//!
//! The PRIMACY paper argues that "the overhead due to compression/
//! decompression cannot be trivialized"; this bench puts numbers on it by
//! evaluating, per dataset: the costless model, the full cost-charging
//! model, and the discrete-event simulation, for both vanilla zlib and
//! PRIMACY.
//!
//! Expected shape: the costless model over-predicts vanilla zlib badly (its
//! compressor is slow) and PRIMACY only mildly (its pipeline is fast) — the
//! quantitative form of the paper's argument for preconditioning.

use primacy_bench::{dataset_bytes, Report};
use primacy_codecs::CodecKind;
use primacy_core::PrimacyConfig;
use primacy_datagen::DatasetId;
use primacy_hpcsim::model::{vanilla_write, ClusterParams, ModelInputs};
use primacy_hpcsim::welton::{effective_network_bandwidth, overprediction, welton_write};
use primacy_hpcsim::{measure_primacy, measure_vanilla, CompressionMethod, Scenario};

fn null_inputs(cluster: ClusterParams, chunk_bytes: f64) -> ModelInputs {
    ModelInputs {
        cluster,
        chunk_bytes,
        metadata_bytes: 0.0,
        alpha1: 0.25,
        alpha2: 0.0,
        sigma_ho: 1.0,
        sigma_lo: 1.0,
        t_prec: f64::INFINITY,
        t_comp: f64::INFINITY,
        t_decomp: f64::INFINITY,
        t_prec_inv: f64::INFINITY,
    }
}

fn main() {
    let mut report = Report::new("related_welton_model");
    let scenario = Scenario::default();
    let chunk = scenario.chunk_bytes as f64;
    println!(
        "SV quantification — costless (Welton) vs cost-charging model vs simulation; write MB/s\n"
    );
    println!(
        "{:<14} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "dataset", "z:free", "z:model", "z:sim", "z:over%", "p:free", "p:model", "p:sim", "p:over%"
    );

    for id in [
        DatasetId::NumComet,
        DatasetId::FlashVelx,
        DatasetId::ObsTemp,
        DatasetId::NumPlasma,
        DatasetId::GtsPhiL,
    ] {
        let data = dataset_bytes(id);
        let inputs = null_inputs(scenario.cluster, chunk);

        // Vanilla zlib.
        let zlib = CodecKind::Zlib.build();
        let (z_sigma, z_cbps, _) =
            measure_vanilla(zlib.as_ref(), &data).expect("measurement failed");
        let z_free = welton_write(&inputs, z_sigma);
        let z_model = vanilla_write(&inputs, z_sigma, z_cbps);
        let z_sim = scenario
            .evaluate(&CompressionMethod::Vanilla(CodecKind::Zlib), &data)
            .expect("measurement failed");

        // PRIMACY.
        let rates = measure_primacy(&PrimacyConfig::default(), &data).expect("measurement failed");
        let p_sigma = 1.0 / rates.ratio;
        let p_free = welton_write(&inputs, p_sigma);
        let p_inputs = rates.to_model_inputs(scenario.cluster, chunk, 2048.0);
        let p_model = primacy_hpcsim::model::primacy_write(&p_inputs);
        let p_sim = scenario
            .evaluate(&CompressionMethod::Primacy(PrimacyConfig::default()), &data)
            .expect("measurement failed");

        report.push(
            format!("{}/zlib_overprediction", id.name()),
            overprediction(&z_free, &z_model),
        );
        report.push(
            format!("{}/primacy_overprediction", id.name()),
            overprediction(&p_free, &p_model),
        );
        println!(
            "{:<14} | {:>9.2} {:>9.2} {:>9.2} {:>8.1}% | {:>9.2} {:>9.2} {:>9.2} {:>8.1}%",
            id.name(),
            z_free.tau / 1e6,
            z_model.tau / 1e6,
            z_sim.write_empirical_mbps,
            overprediction(&z_free, &z_model) * 100.0,
            p_free.tau / 1e6,
            p_model.tau / 1e6,
            p_sim.write_empirical_mbps,
            overprediction(&p_free, &p_model) * 100.0,
        );
    }

    let theta = scenario.cluster.theta;
    println!(
        "\neffective network bandwidth (Welton headline) at theta = {:.1} GB/s:",
        theta / 1e9
    );
    for sigma in [0.9, 0.8, 0.5] {
        println!(
            "  sigma {sigma:.1} -> {:.2} GB/s effective",
            effective_network_bandwidth(theta, sigma) / 1e9
        );
    }
    println!("\nreading: 'over%' is how far the costless assumption over-predicts the");
    println!("cost-charging model. Vanilla zlib is over-predicted far more than PRIMACY —");
    println!("the compression cost the paper says cannot be trivialized.");
    report.finish();
}
