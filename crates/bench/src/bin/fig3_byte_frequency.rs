//! Figure 3: normalized frequency of 2-byte sequences in (a) the exponent
//! bytes and (b) the mantissa bytes, for four representative datasets
//! (phi, info, temp, zeon in the paper).
//!
//! Expected shape (paper): exponent histograms are concentrated on a few
//! hundred sequences with visible peaks (3a); mantissa histograms spread
//! thinly over tens of thousands of sequences with peaks around 1e-5 (3b).

use primacy_bench::{dataset_values, Report};
use primacy_core::analysis::{exponent_histogram, mantissa_histogram, unique_exponent_sequences};
use primacy_datagen::DatasetId;

fn summarize(name: &str, hist: &[f64]) {
    let nonzero = hist.iter().filter(|&&x| x > 0.0).count();
    let peak = hist.iter().cloned().fold(0.0, f64::max);
    // Mass concentration: smallest number of sequences covering 90 %.
    let mut sorted: Vec<f64> = hist.iter().copied().filter(|&x| x > 0.0).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut acc = 0.0;
    let mut k90 = 0;
    for v in &sorted {
        acc += v;
        k90 += 1;
        if acc >= 0.9 {
            break;
        }
    }
    println!(
        "  {name:<22} distinct={nonzero:>6}  peak={peak:.2e}  sequences for 90% of mass={k90}"
    );
}

fn main() {
    let datasets = [
        DatasetId::GtsPhiL,
        DatasetId::ObsInfo,
        DatasetId::ObsTemp,
        DatasetId::GtsChkpZeon,
    ];

    println!("Figure 3a — exponent byte-sequence frequency (domain 0-65535)");
    for id in datasets {
        let values = dataset_values(id);
        let h = exponent_histogram(&values);
        summarize(id.name(), &h);
    }
    println!("  (paper: a handful of dominant sequences; most datasets < 2,000 distinct)");

    println!("\nFigure 3b — mantissa byte-sequence frequency (domain 0-65535)");
    for id in datasets {
        let values = dataset_values(id);
        let h = mantissa_histogram(&values);
        summarize(id.name(), &h);
    }
    println!("  (paper: tens of thousands of distinct sequences, peaks near 1e-5 — no skew for the ID mapper to exploit)");

    println!(
        "\nper-dataset distinct exponent sequences (§II-C claim: majority < 2,000 of 65,536):"
    );
    let mut report = Report::new("fig3_byte_frequency");
    let mut under_2000 = 0;
    for id in DatasetId::ALL {
        let values = dataset_values(id);
        let u = unique_exponent_sequences(&values);
        if u < 2000 {
            under_2000 += 1;
        }
        println!("  {:<16} {u:>6}", id.name());
        report.push(format!("{}/unique_exponent_sequences", id.name()), u as f64);
    }
    println!("  -> {under_2000}/20 datasets under 2,000 (paper: \"the majority\")");
    report.push("summary/datasets_under_2000", under_2000 as f64);
    report.finish();
}
