//! §V claim: "PRIMACY shows substantial improvements on both compression
//! ratio and throughput using bzlib2 and lzo" — the preconditioner is
//! solver-agnostic, not a zlib trick.
//!
//! For each backend codec (zlib-, lzo- and bzip2-class) this bench compares
//! vanilla whole-buffer compression against the same codec behind PRIMACY,
//! on a hard and a quantized dataset.

use primacy_bench::{dataset_bytes, dataset_elements, Report};
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::time::Instant;

fn main() {
    let mut report = Report::new("backend_sweep");
    println!(
        "SV backend sweep: vanilla codec vs PRIMACY+codec ({} doubles/dataset)\n",
        dataset_elements()
    );
    println!(
        "{:<14} {:<6} | {:>9} {:>10} | {:>9} {:>10} | {:>7} {:>7}",
        "dataset", "codec", "vanCR", "vanMB/s", "priCR", "priMB/s", "CRx", "TPx"
    );
    for id in [
        DatasetId::GtsPhiL,
        DatasetId::NumPlasma,
        DatasetId::FlashVely,
    ] {
        let bytes = dataset_bytes(id);
        for kind in [CodecKind::Zlib, CodecKind::Lzr, CodecKind::Bwt] {
            let codec = kind.build();
            let t0 = Instant::now();
            let vanilla = codec.compress(&bytes).expect("compress");
            let van_secs = t0.elapsed().as_secs_f64();
            assert_eq!(codec.decompress(&vanilla).expect("roundtrip"), bytes);

            let cfg = PrimacyConfig {
                codec: kind,
                ..Default::default()
            };
            let c = PrimacyCompressor::new(cfg);
            let t0 = Instant::now();
            let pri = c.compress_bytes(&bytes).expect("compress");
            let pri_secs = t0.elapsed().as_secs_f64();
            assert_eq!(c.decompress_bytes(&pri).expect("roundtrip"), bytes);

            let van_cr = bytes.len() as f64 / vanilla.len() as f64;
            let pri_cr = bytes.len() as f64 / pri.len() as f64;
            let van_tp = bytes.len() as f64 / 1e6 / van_secs;
            let pri_tp = bytes.len() as f64 / 1e6 / pri_secs;
            println!(
                "{:<14} {:<6} | {:>9.3} {:>10.1} | {:>9.3} {:>10.1} | {:>6.2}x {:>6.2}x",
                id.name(),
                kind.to_string(),
                van_cr,
                van_tp,
                pri_cr,
                pri_tp,
                pri_cr / van_cr,
                pri_tp / van_tp
            );
            let key = format!("{}/{kind}", id.name());
            report.push(format!("{key}/vanilla_cr"), van_cr);
            report.push(format!("{key}/primacy_cr"), pri_cr);
            report.push(format!("{key}/cr_gain"), pri_cr / van_cr);
            report.push(format!("{key}/tp_gain"), pri_tp / van_tp);
        }
        println!();
    }
    println!("reading (paper SV): the preconditioner improves every backend's ratio AND");
    println!("throughput; bzip2-class throughput improves but stays \"too low for in-situ");
    println!("processing\" — which is why the paper ships zlib as the solver.");
    report.finish();
}
