//! Archive write/read wall-clock with and without compression/I/O overlap —
//! the experiment that justifies the double-buffered `ArchiveWriter`.
//!
//! Two sinks are measured:
//!
//! * **tmpfs** — a real `BufWriter<File>` on `/dev/shm` (system temp dir as
//!   fallback). Report-only: on a machine where the page cache is
//!   memory-speed, the write stage is itself CPU work, so overlap gains
//!   there come only from spare cores — which a single-core container
//!   (like this repo's CI) does not have.
//! * **staged** — the same file behind a bandwidth pacer that models the
//!   per-node share of a staging I/O path (the paper's compute-node →
//!   I/O-node link, §IV): writes block without consuming CPU. This is the
//!   regime the overlapped writer exists for — while the writer thread
//!   waits out the link, the compress workers keep the core busy — and it
//!   is where the speedup gate and the hpcsim model validation apply.
//!
//! Each staged row carries the *model-predicted* wall time from
//! [`primacy_hpcsim::predict_archive_write`], calibrated from measurement —
//! the model-vs-measured validation the hpcsim crate promises. The rate
//! prior comes from `results/BENCH_throughput.json` (re-measured inline when
//! missing); once the tmpfs bulk write has run, the compress stage is
//! re-calibrated from it, because a memory-speed sink makes that run a
//! direct measurement of the *archive-path* compress rate — the codec-only
//! throughput rate overestimates it (no section framing, CRCs, or per-chunk
//! index rebuilds, and a different chunk size). The compression ratio is
//! taken from the archive actually written. Rows oversubscribing the
//! machine (`threads > cores`) print no prediction: the model deliberately
//! has no term for same-core timeslicing contention.
//!
//! `-- --smoke` (used by ci.sh) shrinks the corpus and gates: archives must
//! be byte-identical across modes, the staged overlapped writer must beat
//! the staged bulk writer (≥ 1.05×, noise-tolerant), and the overlap
//! counter must be nonzero. The ≥1.3× speedup claim is made by the
//! full-size persisted run, not the smoke gate.

use primacy_bench::{mbps, rule, Report};
use primacy_core::{resolve_threads, ArchiveReader, ArchiveWriter, PrimacyConfig};
use primacy_datagen::{DatasetId, Rng};
use primacy_hpcsim::{measure_primacy, predict_archive_write, Calibration};
use primacy_trace::{self as trace, Collector};
use std::fs::File;
use std::io::{BufWriter, Read as _, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The trace sink: overlap counters (`archive.overlap_ns`,
/// `archive.overlap_fraction_pct`) are recorded by `finish()` and read back
/// from here between runs.
static TRACE: Collector = Collector::new();

/// Modeled staging-link bandwidth, bytes/s. The paper's XK6 testbed shares
/// each I/O node's link across 8 compute nodes; 150 MB/s is a plausible
/// per-node share and — deliberately — the same order as the pipeline's
/// compression rate, the regime where overlap pays the most.
const STAGED_SINK_BPS: f64 = 150e6;

struct Corpus {
    name: &'static str,
    bytes: Vec<u8>,
}

/// The two poles of the acceptance criterion: a structured dataset the
/// preconditioner compresses well, and a fully random corpus where the codec
/// gets out of the way and the sink dominates.
fn corpora(elements: usize) -> Vec<Corpus> {
    let mut rng = Rng::seed_from_u64(0x6172_6368_5f69_6f21); // "arch_io!"
    let mut random = vec![0u8; elements * 8];
    rng.fill_bytes(&mut random);
    vec![
        Corpus {
            name: "gts_phi_l",
            bytes: DatasetId::GtsPhiL.generate_bytes(elements),
        },
        Corpus {
            name: "random",
            bytes: random,
        },
    ]
}

/// Prefer tmpfs so the raw sink measures memory-speed I/O, not disk seeks.
fn scratch_dir() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

/// A sink that enforces a byte rate the way a staging link does: the data
/// still lands in the file, but the caller blocks (without CPU) until the
/// link would have drained it.
struct PacedSink<W: Write> {
    inner: W,
    bps: f64,
}

impl<W: Write> PacedSink<W> {
    fn new(inner: W, bps: f64) -> Self {
        Self { inner, bps }
    }
}

impl<W: Write> Write for PacedSink<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // Per-transfer pacing: sending `len` bytes costs `len/bps` whether
        // or not the link idled beforehand — a link does not bank idle time.
        // (Cumulative pacing would let the bulk writer hide the whole link
        // cost inside its compression gaps, which no real link allows.)
        let t0 = Instant::now();
        self.inner.write_all(buf)?;
        let target = buf.len() as f64 / self.bps;
        let elapsed = t0.elapsed().as_secs_f64();
        if target > elapsed {
            std::thread::sleep(Duration::from_secs_f64(target - elapsed));
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Write `bytes` as an archive through `make_sink`'s sink; returns seconds.
fn timed_write<W: Write + Send + 'static>(
    make_sink: impl FnOnce() -> W,
    cfg: &PrimacyConfig,
    bytes: &[u8],
    threads: Option<usize>,
) -> f64 {
    let t0 = Instant::now();
    let sink = make_sink();
    let mut w = match threads {
        Some(t) => ArchiveWriter::with_overlap(sink, cfg.clone(), t),
        None => ArchiveWriter::new(sink, cfg.clone()),
    }
    .expect("open archive writer");
    w.append(bytes).expect("append");
    let mut sink = w.finish().expect("finish archive");
    sink.flush().expect("flush archive");
    drop(sink);
    trace::flush_thread();
    t0.elapsed().as_secs_f64()
}

/// Read the scratch archive back through the pipelined (prefetching) reader;
/// returns (plaintext, seconds).
fn timed_read(path: &PathBuf, threads: usize) -> (Vec<u8>, f64) {
    let mut data = Vec::new();
    File::open(path)
        .expect("open scratch archive")
        .read_to_end(&mut data)
        .expect("read scratch archive");
    let t0 = Instant::now();
    let r = ArchiveReader::open(&data).expect("open archive");
    let plain = r.read_all_pipelined(threads).expect("pipelined read");
    trace::flush_thread();
    (plain, t0.elapsed().as_secs_f64())
}

/// Pull one counter out of the collector and reset it for the next run.
fn take_counter(name: &str) -> u64 {
    let v = TRACE.snapshot().counter(name);
    TRACE.reset();
    v
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    trace::install(&TRACE).expect("install trace collector");
    let elements = if smoke {
        1 << 16 // several chunks at the smoke chunk size, still sub-second
    } else {
        1 << 21 // 16 MiB per corpus, tens of chunks
    };
    let cfg = PrimacyConfig {
        // Small chunks give the pipeline enough sections to overlap even in
        // smoke mode; the default 3 MB chunk would leave one-chunk corpora.
        chunk_bytes: if smoke { 64 * 1024 } else { 1 << 20 },
        ..PrimacyConfig::default()
    };
    let cores = resolve_threads(0);
    let reps = if smoke { 2 } else { 3 };
    let max_threads = cores.clamp(2, 8);
    let thread_points: Vec<usize> = {
        let mut v = vec![1, 2, max_threads];
        v.sort_unstable();
        v.dedup();
        v
    };

    // Calibration: persisted stage rates when available, re-measured inline
    // otherwise (first run on a fresh machine).
    let calibration = Calibration::from_path(&PathBuf::from("results/BENCH_throughput.json")).ok();
    if calibration.is_none() {
        println!("note: results/BENCH_throughput.json missing; calibrating by re-measuring\n");
    }

    let dir = scratch_dir();
    let mut report = Report::new("archive_io");
    println!(
        "Archive write wall-clock, bulk-synchronous vs overlapped \
         ({elements} doubles per corpus, {cores} core(s))"
    );
    println!(
        "tmpfs = {}; staged = same file behind a {:.0} MB/s pacer (per-node staging share)\n",
        dir.display(),
        STAGED_SINK_BPS / 1e6
    );
    println!(
        "{:<11} {:>7} {:>11} | {:>9} {:>9} {:>9} | {:>8} {:>9} {:>9}",
        "corpus", "sink", "mode", "MB/s", "speedup", "overlap%", "model s", "meas s", "err%"
    );
    rule(100);

    for corpus in corpora(elements) {
        let name = corpus.name;
        let bytes = &corpus.bytes;
        let n = bytes.len() as u64;
        let path = dir.join(format!("primacy_archive_io_{name}.prma"));

        // Rate prior for the model; refined from the tmpfs bulk run below.
        let mut compress_bps = match calibration.as_ref().and_then(|c| c.compress_bps(name)) {
            Some(bps) => bps,
            None => {
                measure_primacy(&cfg, bytes)
                    .expect("inline calibration")
                    .compress_bps
            }
        };

        // Warm the scratch file and page cache before any timed run.
        let _ = timed_write(
            || BufWriter::new(File::create(&path).expect("create scratch")),
            &cfg,
            bytes,
            None,
        );
        TRACE.reset();
        let golden = std::fs::read(&path).expect("read warmup archive");
        // Model the ratio the archive actually achieved (container bytes per
        // input byte), not the codec-only ratio.
        let ratio = n as f64 / golden.len().max(1) as f64;

        for staged in [false, true] {
            let sink_label = if staged { "staged" } else { "tmpfs" };
            let make = |staged: bool| {
                let file = BufWriter::new(File::create(&path).expect("create scratch"));
                move || {
                    PacedSink::new(
                        file,
                        if staged {
                            STAGED_SINK_BPS
                        } else {
                            f64::INFINITY
                        },
                    )
                }
            };

            // Best-of-N: a 1-core box shares itself with the OS, so single
            // shots swing 30%+; the minimum is the run the machine didn't
            // preempt.
            let bulk_secs = (0..reps)
                .map(|_| {
                    let s = timed_write(make(staged), &cfg, bytes, None);
                    TRACE.reset();
                    s
                })
                .fold(f64::MAX, f64::min);
            let bulk_mbps = n as f64 / 1e6 / bulk_secs.max(1e-9);
            if !staged {
                // A memory-speed sink makes the bulk run a direct measurement
                // of the archive-path compress rate; use it for the staged
                // predictions below (tmpfs runs first).
                compress_bps = n as f64 / bulk_secs.max(1e-9);
            }
            report.push(
                format!("archive_io/{name}/{sink_label}/bulk_mbps"),
                bulk_mbps,
            );
            report.push(
                format!("archive_io/{name}/{sink_label}/bulk_secs"),
                bulk_secs,
            );
            println!(
                "{:<11} {:>7} {:>11} | {} {:>9} {:>9} | {:>8} {:>9.3} {:>9}",
                name,
                sink_label,
                "bulk",
                mbps(bulk_mbps),
                "1.00x",
                "-",
                "-",
                bulk_secs,
                "-"
            );
            assert_eq!(
                std::fs::read(&path).expect("read bulk archive"),
                golden,
                "{name}/{sink_label}: bulk archive drifted from warmup"
            );

            for &t in &thread_points {
                let (secs, overlap_pct) = (0..reps)
                    .map(|_| {
                        let s = timed_write(make(staged), &cfg, bytes, Some(t));
                        (s, take_counter("archive.overlap_fraction_pct"))
                    })
                    .fold(
                        (f64::MAX, 0),
                        |best, run| if run.0 < best.0 { run } else { best },
                    );
                assert_eq!(
                    std::fs::read(&path).expect("read overlapped archive"),
                    golden,
                    "{name}/{sink_label}: overlapped({t}) archive is not byte-identical to bulk"
                );
                let rate = n as f64 / 1e6 / secs.max(1e-9);
                let speedup = bulk_secs / secs.max(1e-9);
                let key = format!("archive_io/{name}/{sink_label}");
                report.push(format!("{key}/overlap{t}_mbps"), rate);
                report.push(format!("{key}/overlap{t}_secs"), secs);
                report.push(format!("{key}/overlap{t}_speedup"), speedup);
                report.push(format!("{key}/overlap{t}_fraction_pct"), overlap_pct as f64);
                // Oversubscribed rows (t > cores) are outside the model's
                // domain — it has no term for same-core timeslicing — so
                // only in-parallelism rows get (and are judged on) a
                // prediction.
                let (model_col, err_col) = if t <= cores {
                    let p = predict_archive_write(
                        n as f64,
                        ratio,
                        compress_bps,
                        if staged { STAGED_SINK_BPS } else { f64::MAX },
                        t,
                        cfg.chunk_bytes as f64,
                    );
                    let err_pct = 100.0 * (p.overlapped_secs - secs) / secs.max(1e-9);
                    report.push(format!("{key}/model/overlap{t}_secs"), p.overlapped_secs);
                    report.push(format!("{key}/model/overlap{t}_err_pct"), err_pct);
                    (
                        format!("{:.3}", p.overlapped_secs),
                        format!("{err_pct:+.1}"),
                    )
                } else {
                    ("-".into(), "-".into())
                };
                println!(
                    "{:<11} {:>7} {:>11} | {} {:>8.2}x {:>8}% | {:>8} {:>9.3} {:>9}",
                    name,
                    sink_label,
                    format!("overlap({t})"),
                    mbps(rate),
                    speedup,
                    overlap_pct,
                    model_col,
                    secs,
                    err_col
                );

                if smoke && staged {
                    // The staged sink is the regime overlap exists for: the
                    // writer thread's link wait must hide behind compression
                    // even on one core. tmpfs rows stay report-only — with
                    // no spare core, a memcpy-speed sink leaves nothing to
                    // hide.
                    assert!(
                        speedup >= 1.05,
                        "{name}: staged overlapped({t}) write only {speedup:.2}x of bulk"
                    );
                    assert!(
                        overlap_pct > 0,
                        "{name}: staged overlapped({t}) write recorded zero overlap"
                    );
                }
            }
        }

        // Read side: prefetching decode of the archive just written.
        let (plain, read_secs) = timed_read(&path, max_threads);
        let prefetch_bytes = take_counter("archive.prefetch_bytes");
        assert_eq!(plain, *bytes, "{name}: archive roundtrip failed");
        assert!(
            prefetch_bytes > 0,
            "{name}: pipelined read staged no sections"
        );
        report.push(
            format!("archive_io/{name}/read/pipelined_mbps"),
            n as f64 / 1e6 / read_secs.max(1e-9),
        );
        let _ = std::fs::remove_file(&path);
    }

    if smoke {
        println!("\nsmoke: byte-identity, overlap counters and staged-sink speedup gate OK");
    }
    report.finish();
}
