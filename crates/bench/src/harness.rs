//! In-tree micro-benchmark harness: the zero-dependency stand-in for
//! `criterion` (see DESIGN.md "Dependency policy").
//!
//! Deliberately small: each benchmark runs a fixed warmup, then `N` timed
//! iterations, and reports the **median** and the **MAD** (median absolute
//! deviation) — both robust to the occasional scheduler hiccup that makes
//! means/stddevs useless at these durations. Throughput is derived from the
//! median. The bench files under `crates/bench/benches/` keep their
//! criterion-era names and group/id layout so `cargo bench -p primacy-bench`
//! output stays comparable across the switch.
//!
//! Environment knobs:
//! * `PRIMACY_BENCH_SAMPLES` — timed iterations per benchmark (default 10).
//! * `PRIMACY_BENCH_WARMUP` — warmup iterations (default 2).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Median wall time per iteration.
    pub median: Duration,
    /// Median absolute deviation of the per-iteration times.
    pub mad: Duration,
    /// Number of timed iterations.
    pub samples: usize,
}

impl Stats {
    /// Throughput in MB/s for a workload of `bytes` per iteration.
    pub fn mbps(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e6 / self.median.as_secs_f64().max(1e-12)
    }
}

fn env_count(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Run `f` under warmup + timed samples and return robust statistics.
pub fn measure<R>(mut f: impl FnMut() -> R) -> Stats {
    let warmup = env_count("PRIMACY_BENCH_WARMUP", 2);
    let samples = env_count("PRIMACY_BENCH_SAMPLES", 10);
    for _ in 0..warmup {
        black_box(f());
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let mut deviations: Vec<Duration> = times.iter().map(|&t| t.abs_diff(median)).collect();
    deviations.sort_unstable();
    let mad = deviations[deviations.len() / 2];
    Stats {
        median,
        mad,
        samples,
    }
}

/// A named group of benchmarks, mirroring criterion's
/// `benchmark_group` / `bench_with_input` reporting shape.
pub struct Group {
    name: String,
    /// Bytes processed per iteration; enables the MB/s column.
    throughput_bytes: Option<u64>,
}

impl Group {
    /// Start a group and print its header.
    pub fn new(name: &str) -> Self {
        println!("\n{name}");
        println!(
            "{:<28} {:>12} {:>12} {:>10}",
            "benchmark", "median", "MAD", "MB/s"
        );
        Self {
            name: name.to_string(),
            throughput_bytes: None,
        }
    }

    /// Set the per-iteration workload size used for the MB/s column.
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Run one benchmark in the group (skipped when a CLI filter is given
    /// and matches neither the group nor the benchmark id).
    pub fn bench<R>(&self, id: &str, f: impl FnMut() -> R) -> Option<Stats> {
        if !filter_allows(&self.name, id) {
            return None;
        }
        let stats = measure(f);
        let mbps = match self.throughput_bytes {
            Some(bytes) => format!("{:>10.1}", stats.mbps(bytes)),
            None => format!("{:>10}", "-"),
        };
        println!(
            "{:<28} {:>12} {:>12} {mbps}",
            id,
            fmt_duration(stats.median),
            fmt_duration(stats.mad),
        );
        Some(stats)
    }
}

/// `cargo bench -- <filter>` support: run only benchmarks whose group or id
/// contains the filter substring. Cargo's own `--bench` style flags are
/// ignored.
fn filter_allows(group: &str, id: &str) -> bool {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    args.is_empty()
        || args
            .iter()
            .any(|f| group.contains(f.as_str()) || id.contains(f.as_str()))
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_stats() {
        let mut n = 0u64;
        let stats = measure(|| {
            n += 1;
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(stats.samples, 10);
        // warmup 2 + samples 10
        assert_eq!(n, 12);
        assert!(stats.median >= Duration::from_millis(1));
        assert!(stats.mad <= stats.median);
    }

    #[test]
    fn mbps_uses_median() {
        let stats = Stats {
            median: Duration::from_millis(10),
            mad: Duration::ZERO,
            samples: 1,
        };
        assert!((stats.mbps(1_000_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
