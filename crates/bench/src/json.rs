//! Minimal hand-rolled JSON: an emitter for the bench result records and a
//! recursive-descent parser for round-trip checks.
//!
//! The workspace's zero-external-dependency policy (DESIGN.md) rules out
//! `serde`/`serde_json`; the bench binaries only ever need to emit flat
//! records of strings and finite numbers and read them back, so this small
//! subset is deliberate: no comments, no trailing commas, numbers are `f64`
//! (integer precision above 2⁵³ is not preserved), and non-finite floats
//! serialize as `null` (JSON has no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the emitted form of NaN/±Inf numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (unescaped form).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) so emission is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field accessor.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => write_number(*x, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(x)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Number(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Integral values print without an exponent or trailing `.0` so the
        // output looks like ordinary JSON integers.
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest-roundtrip Display for f64 is valid JSON syntax.
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub message: &'static str,
    /// Byte offset where it was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be followed
                            // by a \uDC00-\uDFFF low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect_byte(b'\\', "expected low surrogate")?;
                                self.expect_byte(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Consume exactly 4 hex digits and return the code unit.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        if !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape"));
        }
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        // The scanned span is ASCII digits/signs only; a non-UTF-8 span is
        // impossible, and an empty fallback fails the parse below instead.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or_default();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_compact_documents() {
        let doc = Value::object([
            ("name", Value::from("gts_phi_l")),
            ("cr", Value::from(1.5)),
            ("chunks", Value::from(12usize)),
            ("ok", Value::Bool(true)),
            ("bad", Value::Number(f64::NAN)),
        ]);
        assert_eq!(
            doc.to_json(),
            r#"{"bad":null,"chunks":12,"cr":1.5,"name":"gts_phi_l","ok":true}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = Value::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_json(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Value::Object(BTreeMap::new())));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\n\t\"\\é""#).unwrap(),
            Value::String("a\n\t\"\\é".into())
        );
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::String("Aé".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"abc",
            "[1] x",
            "01x",
            r#""\ud83d""#,
            "nul",
            "+1",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_through_emit_and_parse() {
        // A value whose shortest decimal form needs all 17 digits.
        let awkward = 0.1f64 + 0.2;
        let doc = Value::object([
            ("experiment", Value::from("table3")),
            (
                "records",
                Value::Array(vec![
                    Value::object([
                        ("key", Value::from("gts_phi_l/zlib_cr")),
                        ("paper", Value::from(1.35)),
                        ("measured", Value::from(awkward)),
                    ]),
                    Value::object([("key", Value::from("empty")), ("paper", Value::Null)]),
                ]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
        // And float precision survives exactly.
        let back = parse(&text).unwrap();
        let m = back.get("records").unwrap().as_array().unwrap()[0]
            .get("measured")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(m.to_bits(), awkward.to_bits());
    }
}
