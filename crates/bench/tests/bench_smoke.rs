//! End-to-end smoke test for the bench binaries: run one real binary on a
//! tiny input, have it emit its machine-readable report via
//! `PRIMACY_BENCH_JSON`, and check the output parses back through the
//! hand-rolled `primacy_bench::json` emitter/parser pair.
//!
//! This is the CI guard for the zero-dependency reporting path: a binary
//! that stops emitting valid JSON, or an emitter/parser drift, fails here
//! in seconds instead of surfacing after a full bench sweep.

use primacy_bench::json::{self, Value};
use std::process::Command;

#[test]
fn fig1_binary_emits_parseable_json() {
    let out_path =
        std::env::temp_dir().join(format!("primacy_bench_smoke_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out_path);

    let status = Command::new(env!("CARGO_BIN_EXE_fig1_bit_probability"))
        // 4096 doubles per dataset: enough for the probability estimates to
        // be finite, small enough that all 20 datasets finish in seconds.
        .env("PRIMACY_BENCH_ELEMS", "4096")
        .env("PRIMACY_BENCH_JSON", &out_path)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn fig1_bit_probability");
    assert!(status.success(), "binary exited with {status}");

    let text = std::fs::read_to_string(&out_path).expect("report file written");
    let _ = std::fs::remove_file(&out_path);

    let doc = json::parse(&text).expect("report parses");
    assert_eq!(
        doc.get("experiment").and_then(Value::as_str),
        Some("fig1_bit_probability")
    );
    let records = doc
        .get("records")
        .and_then(Value::as_array)
        .expect("records array");
    assert!(!records.is_empty(), "report has records");
    for rec in records {
        let key = rec.get("key").and_then(Value::as_str).expect("record key");
        assert!(!key.is_empty());
        let value = rec
            .get("value")
            .and_then(Value::as_f64)
            .expect("record value");
        assert!(value.is_finite(), "metric {key} is finite");
        // Bit probabilities live in [0, 1].
        assert!((0.0..=1.0).contains(&value), "metric {key} = {value}");
    }

    // The emitter must reproduce its own parse — i.e. parse ∘ emit is the
    // identity on the document (key order is deterministic via BTreeMap).
    let reemitted = doc.to_json();
    assert_eq!(json::parse(&reemitted).expect("re-parse"), doc);
    assert_eq!(reemitted, json::parse(&text).expect("parse").to_json());
}
