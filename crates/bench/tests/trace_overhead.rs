//! Trace-overhead smoke test (ISSUE 3 satellite): the observability layer
//! must be free when disabled and cheap when enabled.
//!
//! Two claims are pinned, both via the harness's median/MAD statistics (not
//! wall-clock absolutes, which are meaningless on shared CI machines):
//!
//! 1. **Disabled record sites cost one atomic load.** A tight loop over
//!    `span_duration`/`counter`/`observe` with no sink installed must
//!    average well under a microsecond per record — orders of magnitude
//!    below any real stage, so instrumented hot paths are unaffected.
//! 2. **Enabled tracing stays within noise of the disabled baseline.**
//!    Median compress time with a live [`primacy_trace::Collector`] must be
//!    within the disabled median plus a 25% margin plus several MADs. The
//!    margin is deliberately generous: CI runs this unoptimized on a
//!    single-core container where scheduler noise dwarfs the per-chunk cost
//!    of ~20 buffered records.
//!
//! Ordering matters: `primacy_trace::install` is once-per-process (like
//! `log::set_logger`), so everything is one `#[test]` — baseline first,
//! enabled run last.

use primacy_bench::harness;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use primacy_trace as trace;
use std::time::Duration;

#[test]
fn tracing_overhead_is_within_noise() {
    // Keep the harness short: this is a smoke test, not a benchmark run.
    std::env::set_var("PRIMACY_BENCH_WARMUP", "1");
    std::env::set_var("PRIMACY_BENCH_SAMPLES", "7");

    // -- Claim 1: disabled record sites are near-free. ---------------------
    assert!(!trace::enabled(), "no sink installed yet");
    const RECORDS: u32 = 100_000;
    let disabled_records = harness::measure(|| {
        for i in 0..RECORDS {
            trace::span_duration("smoke.span", Duration::from_nanos(u64::from(i)));
            trace::counter("smoke.counter", 1);
            trace::observe("smoke.histogram", u64::from(i));
        }
    });
    let per_record = disabled_records.median / (3 * RECORDS);
    assert!(
        per_record < Duration::from_micros(1),
        "disabled record site costs {per_record:?} (expected ≪ 1µs)"
    );

    // -- Claim 2: enabled tracing is within noise of disabled. -------------
    // 64 KiB chunks over ~1.6 MB: enough chunks (~25) that per-chunk trace
    // overhead would show up, small enough for an unoptimized CI run.
    let cfg = PrimacyConfig {
        chunk_bytes: 64 * 1024,
        ..Default::default()
    };
    let compressor = PrimacyCompressor::new(cfg);
    let data = DatasetId::GtsPhiL.generate_bytes(200_000);

    let baseline = harness::measure(|| compressor.compress_bytes(&data).expect("compress"));

    static COLLECTOR: trace::Collector = trace::Collector::new();
    trace::install(&COLLECTOR).expect("first install");
    assert!(trace::enabled());
    let traced = harness::measure(|| compressor.compress_bytes(&data).expect("compress"));
    trace::flush_thread();

    // Sanity: tracing was actually live during the traced run.
    let agg = COLLECTOR.snapshot();
    assert!(agg.counter("chunk.compress") > 0, "collector saw no chunks");
    assert!(
        agg.span_total("deflate").as_nanos() > 0,
        "collector saw no stage spans"
    );

    // The traced median must sit within the baseline median plus a 25%
    // margin plus 4 MADs from each side — "within noise", robustly.
    let budget = baseline.median + baseline.median / 4 + 4 * baseline.mad + 4 * traced.mad;
    assert!(
        traced.median <= budget,
        "traced median {:?} exceeds noise budget {:?} (baseline {:?} ± {:?}, traced ± {:?})",
        traced.median,
        budget,
        baseline.median,
        baseline.mad,
        traced.mad
    );
}
