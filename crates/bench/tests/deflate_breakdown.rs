//! Developer probe: sub-stage breakdown of the deflate pipeline stage.
//!
//! The throughput benchmark reports the deflate stage as one number, but that
//! number folds together LZ77 match finding, entropy coding, inflate, and the
//! container checksum. When the stage regresses (or an optimization
//! under-delivers), this probe says which of the four moved. Ignored by
//! default — it prints timings rather than asserting them; run it with
//!
//! ```text
//! cargo test --release -p primacy-bench --test deflate_breakdown -- --ignored --nocapture
//! ```

use std::time::Instant;

use primacy_codecs::checksum::adler32;
use primacy_codecs::deflate::{encode, inflate, lz77, Level};
use primacy_datagen::{DatasetId, Rng};

fn mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs.max(1e-9)
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn breakdown(name: &str, data: &[u8]) {
    let mut scratch = lz77::EncoderScratch::new();
    // Warm the scratch allocations out of the measurement.
    let _ = primacy_codecs::deflate::deflate_with(data, Level::Default, &mut scratch);

    let (_, t_tok) = time(|| lz77::tokenize_into(data, Level::Default, &mut scratch));
    let tokens = scratch.tokens().to_vec();
    let (stream, t_emit) = time(|| encode::emit_blocks(data, &tokens));
    let (out, t_inf) = time(|| inflate(&stream).expect("inflate"));
    assert_eq!(out, data);
    let (_, t_adler) = time(|| adler32(data));

    let n = data.len();
    println!(
        "{name:<12} tokenize {:7.1} MB/s | emit {:7.1} MB/s | inflate {:7.1} MB/s | adler {:7.1} MB/s",
        mbps(n, t_tok),
        mbps(n, t_emit),
        mbps(n, t_inf),
        mbps(n, t_adler),
    );
    println!(
        "{name:<12} compress = {:7.1} MB/s (tokenize+emit), decompress = {:7.1} MB/s (inflate+adler)",
        mbps(n, t_tok + t_emit),
        mbps(n, t_inf + t_adler),
    );
}

#[test]
#[ignore = "developer probe: prints token statistics, asserts only sanity"]
fn deflate_token_stats() {
    for (name, data) in [
        ("obs_error", DatasetId::ObsError.generate_bytes(1 << 20)),
        ("gts_phi_l", DatasetId::GtsPhiL.generate_bytes(1 << 20)),
    ] {
        let tokens = lz77::tokenize(&data, Level::Default);
        let mut lits = 0u64;
        let mut matches = 0u64;
        let mut match_bytes = 0u64;
        let mut len_hist = [0u64; 5]; // 3-4, 5-8, 9-16, 17-64, 65+
        let mut dist_hist = [0u64; 5]; // 1, 2-7, 8-64, 65-4096, 4097+
        for &t in &tokens {
            match t {
                lz77::Token::Literal(_) => lits += 1,
                lz77::Token::Match { len, dist } => {
                    matches += 1;
                    match_bytes += u64::from(len);
                    let lb = match len {
                        3..=4 => 0,
                        5..=8 => 1,
                        9..=16 => 2,
                        17..=64 => 3,
                        _ => 4,
                    };
                    let db = match dist {
                        1 => 0,
                        2..=7 => 1,
                        8..=64 => 2,
                        65..=4096 => 3,
                        _ => 4,
                    };
                    len_hist[lb] += 1;
                    dist_hist[db] += 1;
                }
            }
        }
        assert_eq!(lits + match_bytes, data.len() as u64);
        println!(
            "{name}: {} tokens = {lits} literals + {matches} matches covering {match_bytes} bytes",
            tokens.len()
        );
        println!("  len  3-4/5-8/9-16/17-64/65+: {len_hist:?}");
        println!("  dist 1/2-7/8-64/65-4k/4k+:   {dist_hist:?}");
    }
}

#[test]
#[ignore = "developer probe: prints a timing breakdown, asserts only correctness"]
fn deflate_substage_breakdown() {
    let elements = 1 << 20;
    let mut rng = Rng::seed_from_u64(0x7470_5f72_616e_646f);
    let mut random = vec![0u8; elements * 8];
    rng.fill_bytes(&mut random);
    breakdown("obs_error", &DatasetId::ObsError.generate_bytes(elements));
    breakdown("random", &random);
    breakdown("gts_phi_l", &DatasetId::GtsPhiL.generate_bytes(elements));
}
