//! Criterion sweep over the chunk size — the design-choice ablation behind
//! §II-B's fixed 3 MB: compressor efficiency (ratio per CPU second) should
//! level off around that size, while tiny chunks pay per-chunk index
//! overhead and giant chunks stop helping.

// Config tweaks read more clearly as sequential assignments here.
#![allow(clippy::field_reassign_with_default)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::hint::black_box;

fn bench_chunk_sizes(c: &mut Criterion) {
    let bytes = DatasetId::MsgSp.generate_bytes(1 << 20); // 8 MiB
    let mut group = c.benchmark_group("chunk_size_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));

    for chunk_kb in [64usize, 256, 1024, 3072, 8192] {
        let mut cfg = PrimacyConfig::default();
        cfg.chunk_bytes = chunk_kb * 1024;
        let compressor = PrimacyCompressor::new(cfg);
        // Record the ratio once so the report ties speed to ratio.
        let out = compressor.compress_bytes(&bytes).unwrap();
        eprintln!(
            "chunk {chunk_kb:>5} KiB: CR {:.4}",
            bytes.len() as f64 / out.len() as f64
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{chunk_kb}KiB")),
            &bytes,
            |b, data| {
                b.iter(|| black_box(compressor.compress_bytes(black_box(data)).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chunk_sizes);
criterion_main!(benches);
