//! Sweep over the chunk size — the design-choice ablation behind §II-B's
//! fixed 3 MB: compressor efficiency (ratio per CPU second) should level
//! off around that size, while tiny chunks pay per-chunk index overhead and
//! giant chunks stop helping.
//!
//! Runs on the in-tree harness (`primacy_bench::harness`).

use primacy_bench::harness::Group;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::hint::black_box;

fn main() {
    let bytes = DatasetId::MsgSp.generate_bytes(1 << 20); // 8 MiB
    let group = Group::new("chunk_size_sweep").throughput_bytes(bytes.len() as u64);

    for chunk_kb in [64usize, 256, 1024, 3072, 8192] {
        let cfg = PrimacyConfig {
            chunk_bytes: chunk_kb * 1024,
            ..Default::default()
        };
        let compressor = PrimacyCompressor::new(cfg);
        // Record the ratio once so the report ties speed to ratio.
        let out = compressor.compress_bytes(&bytes).unwrap();
        eprintln!(
            "chunk {chunk_kb:>5} KiB: CR {:.4}",
            bytes.len() as f64 / out.len() as f64
        );
        group.bench(&format!("{chunk_kb}KiB"), || {
            black_box(compressor.compress_bytes(black_box(&bytes)).unwrap())
        });
    }
}
