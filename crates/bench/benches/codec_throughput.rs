//! Criterion micro-benchmarks: compression and decompression throughput of
//! every codec on a representative 3 MB chunk (the paper's unit of work).
//! Backs the throughput columns of Table III and the Tcomp model input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::hint::black_box;

const CHUNK_ELEMS: usize = 3 * 1024 * 1024 / 8;

fn bench_codecs(c: &mut Criterion) {
    let bytes = DatasetId::FlashVelx.generate_bytes(CHUNK_ELEMS);

    let mut group = c.benchmark_group("compress_3mb_chunk");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    for kind in CodecKind::ALL {
        let codec = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &bytes, |b, data| {
            b.iter(|| black_box(codec.compress(black_box(data)).unwrap()));
        });
    }
    {
        let primacy = PrimacyCompressor::new(PrimacyConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter("primacy"), &bytes, |b, data| {
            b.iter(|| black_box(primacy.compress_bytes(black_box(data)).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress_3mb_chunk");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    for kind in CodecKind::ALL {
        let codec = kind.build();
        let comp = codec.compress(&bytes).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &comp, |b, data| {
            b.iter(|| black_box(codec.decompress(black_box(data)).unwrap()));
        });
    }
    {
        let primacy = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = primacy.compress_bytes(&bytes).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter("primacy"), &comp, |b, data| {
            b.iter(|| black_box(primacy.decompress_bytes(black_box(data)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
