//! Micro-benchmarks: compression and decompression throughput of every
//! codec on a representative 3 MB chunk (the paper's unit of work). Backs
//! the throughput columns of Table III and the Tcomp model input.
//!
//! Runs on the in-tree harness (`primacy_bench::harness`) — see DESIGN.md
//! "Dependency policy" for why criterion is not used.

use primacy_bench::harness::Group;
use primacy_codecs::CodecKind;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use std::hint::black_box;

const CHUNK_ELEMS: usize = 3 * 1024 * 1024 / 8;

fn main() {
    let bytes = DatasetId::FlashVelx.generate_bytes(CHUNK_ELEMS);

    let group = Group::new("compress_3mb_chunk").throughput_bytes(bytes.len() as u64);
    for kind in CodecKind::ALL {
        let codec = kind.build();
        group.bench(&kind.to_string(), || {
            black_box(codec.compress(black_box(&bytes)).unwrap())
        });
    }
    {
        let primacy = PrimacyCompressor::new(PrimacyConfig::default());
        group.bench("primacy", || {
            black_box(primacy.compress_bytes(black_box(&bytes)).unwrap())
        });
    }

    let group = Group::new("decompress_3mb_chunk").throughput_bytes(bytes.len() as u64);
    for kind in CodecKind::ALL {
        let codec = kind.build();
        let comp = codec.compress(&bytes).unwrap();
        group.bench(&kind.to_string(), || {
            black_box(codec.decompress(black_box(&comp)).unwrap())
        });
    }
    {
        let primacy = PrimacyCompressor::new(PrimacyConfig::default());
        let comp = primacy.compress_bytes(&bytes).unwrap();
        group.bench("primacy", || {
            black_box(primacy.decompress_bytes(black_box(&comp)).unwrap())
        });
    }
}
