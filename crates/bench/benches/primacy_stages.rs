//! Micro-benchmarks for the individual PRIMACY pipeline stages (Fig. 2
//! workflow): split, frequency analysis, ID mapping, linearization, ISOBAR
//! analysis. Backs the Tprec input of the performance model and shows that
//! the preconditioner itself is far faster than any codec.
//!
//! Runs on the in-tree harness (`primacy_bench::harness`).

use primacy_bench::harness::Group;
use primacy_core::config::IsobarConfig;
use primacy_core::freq::FreqTable;
use primacy_core::idmap::IdMap;
use primacy_core::isobar;
use primacy_core::linearize::{to_columns, to_rows};
use primacy_core::split::{join_hi_lo, split_hi_lo};
use primacy_datagen::DatasetId;
use std::hint::black_box;

const CHUNK_ELEMS: usize = 3 * 1024 * 1024 / 8;

fn main() {
    let bytes = DatasetId::GtsPhiL.generate_bytes(CHUNK_ELEMS);
    let n = CHUNK_ELEMS;
    let (hi, lo) = split_hi_lo(&bytes, 8, 2).unwrap();
    let freq = FreqTable::from_hi_matrix(&hi, 2);
    let map = IdMap::from_freq(&freq, 2).unwrap();
    let mut encoded = hi.clone();
    map.encode_hi(&mut encoded).unwrap();
    let columns = to_columns(&encoded, n, 2);

    let group = Group::new("primacy_stages").throughput_bytes(bytes.len() as u64);

    group.bench("split_hi_lo", || {
        black_box(split_hi_lo(black_box(&bytes), 8, 2).unwrap())
    });
    group.bench("join_hi_lo", || {
        black_box(join_hi_lo(black_box(&hi), black_box(&lo), 8, 2).unwrap())
    });
    group.bench("frequency_analysis", || {
        black_box(FreqTable::from_hi_matrix(black_box(&hi), 2))
    });
    group.bench("index_generation", || {
        black_box(IdMap::from_freq(black_box(&freq), 2).unwrap())
    });
    group.bench("id_encode", || {
        let mut data = hi.clone();
        map.encode_hi(&mut data).unwrap();
        black_box(data)
    });
    group.bench("id_decode", || {
        let mut data = encoded.clone();
        map.decode_hi(&mut data).unwrap();
        black_box(data)
    });
    group.bench("column_linearize", || {
        black_box(to_columns(black_box(&encoded), n, 2))
    });
    group.bench("row_delinearize", || {
        black_box(to_rows(black_box(&columns), n, 2))
    });
    {
        let cfg = IsobarConfig::default();
        group.bench("isobar_analyze", || {
            black_box(isobar::analyze(black_box(&lo), n, 6, &cfg))
        });
    }
    {
        let cfg = IsobarConfig::default();
        let report = isobar::analyze(&lo, n, 6, &cfg);
        group.bench("isobar_partition", || {
            black_box(isobar::partition(black_box(&lo), n, 6, report.mask))
        });
    }
}
