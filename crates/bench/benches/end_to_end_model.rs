//! Benchmarks of the hpcsim layer itself: evaluating the closed-form model
//! is effectively free while the discrete-event simulation scales with
//! ρ·steps — confirming the model is cheap enough for the paper's intended
//! use (predicting target systems interactively), and benchmarking the
//! parallel chunk pipeline that feeds it.
//!
//! Runs on the in-tree harness (`primacy_bench::harness`).

use primacy_bench::harness::Group;
use primacy_core::{PrimacyCompressor, PrimacyConfig};
use primacy_datagen::DatasetId;
use primacy_hpcsim::model::{base_write, primacy_write, ClusterParams, ModelInputs};
use primacy_hpcsim::sim::{simulate, SimConfig};
use std::hint::black_box;

fn model_inputs() -> ModelInputs {
    ModelInputs {
        cluster: ClusterParams::default(),
        chunk_bytes: 3.0 * 1024.0 * 1024.0,
        metadata_bytes: 2048.0,
        alpha1: 0.25,
        alpha2: 0.2,
        sigma_ho: 0.3,
        sigma_lo: 0.85,
        t_prec: 400e6,
        t_comp: 60e6,
        t_decomp: 200e6,
        t_prec_inv: 500e6,
    }
}

fn main() {
    let inputs = model_inputs();
    let group = Group::new("analytical_model");
    group.bench("analytical_model_eval", || {
        let i = black_box(&inputs);
        black_box((base_write(i).tau, primacy_write(i).tau))
    });

    let group = Group::new("discrete_event_sim");
    for steps in [16usize, 64, 256] {
        let cfg = SimConfig {
            steps,
            compute_secs: 0.05,
            compressed_bytes: 2.4e6,
            ..Default::default()
        };
        group.bench(&steps.to_string(), || black_box(simulate(black_box(&cfg))));
    }

    // Parallel chunk pipeline scaling (compute-node-side work).
    let bytes = DatasetId::ObsInfo.generate_bytes(1 << 20);
    let cfg = PrimacyConfig {
        chunk_bytes: 256 * 1024,
        ..Default::default()
    };
    let compressor = PrimacyCompressor::new(cfg);
    let group = Group::new("parallel_pipeline").throughput_bytes(bytes.len() as u64);
    for threads in [1usize, 2, 4, 8] {
        group.bench(&threads.to_string(), || {
            black_box(
                compressor
                    .compress_bytes_parallel(black_box(&bytes), threads)
                    .unwrap(),
            )
        });
    }
}
