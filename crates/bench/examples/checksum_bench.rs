//! Developer probe: standalone Adler-32 / CRC-32 throughput on 64 MiB of
//! synthetic bytes, two passes (first warms the page cache and detects the
//! SIMD path). Checksums ride inside the deflate stage numbers in the main
//! throughput bench; this isolates them when tuning the folding kernels.
//!
//! ```text
//! cargo run --release -p primacy-bench --example checksum_bench
//! ```

use primacy_codecs::checksum::{adler32, crc32};
use std::time::Instant;

fn main() {
    let data: Vec<u8> = (0..(64 << 20)).map(|i| (i * 131 % 251) as u8).collect();
    for _ in 0..2 {
        let t = Instant::now();
        let a = adler32(&data);
        let da = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let c = crc32(&data);
        let dc = t.elapsed().as_secs_f64();
        println!(
            "adler {a:08x} {:.0} MB/s | crc {c:08x} {:.0} MB/s",
            data.len() as f64 / 1e6 / da,
            data.len() as f64 / 1e6 / dc
        );
    }
}
