//! Deterministic permutation of datasets.
//!
//! §IV-G of the paper re-runs the compression comparison on *permutations*
//! of the original datasets to show PRIMACY's advantage is robust to how an
//! application linearizes its data (run-length locality is destroyed, byte-
//! frequency statistics are preserved). These helpers reproduce that
//! treatment.

use crate::rng::Rng;

/// Seed used by [`permute`] so every experiment shuffles identically.
pub const DEFAULT_PERMUTE_SEED: u64 = 0x5157_4F52_4D21;

/// Return a randomly permuted copy of `values` using the suite-wide seed.
pub fn permute(values: &[f64]) -> Vec<f64> {
    permute_with_seed(values, DEFAULT_PERMUTE_SEED)
}

/// Fisher–Yates shuffle with an explicit seed.
pub fn permute_with_seed(values: &[f64], seed: u64) -> Vec<f64> {
    let mut out = values.to_vec();
    Rng::seed_from_u64(seed).shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_rearrangement() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let p = permute(&v);
        assert_ne!(v, p);
        let mut sorted = p.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, v);
    }

    #[test]
    fn permutation_is_deterministic() {
        let v: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(permute(&v), permute(&v));
        assert_ne!(permute_with_seed(&v, 1), permute_with_seed(&v, 2));
    }

    #[test]
    fn small_inputs() {
        assert!(permute(&[]).is_empty());
        assert_eq!(permute(&[5.0]), vec![5.0]);
    }

    #[test]
    fn destroys_adjacent_runs() {
        // A run-heavy series should have almost no adjacent repeats after
        // shuffling.
        let v: Vec<f64> = (0..10_000).map(|i| (i / 100) as f64).collect();
        let before = v.windows(2).filter(|w| w[0] == w[1]).count();
        let p = permute(&v);
        let after = p.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(before > 9_000);
        assert!(after < 500, "{after} repeats survived the shuffle");
    }
}
