//! Deterministic synthetic stand-ins for the 20 scientific double-precision
//! datasets evaluated in the PRIMACY paper (CLUSTER 2012, §IV-B).
//!
//! The original data (GTS fusion checkpoints, FLASH astrophysics fields, NPB
//! message traces, numeric simulations and satellite observations) is no
//! longer published. PRIMACY, however, is a *byte-frequency* method: the only
//! dataset properties its behaviour depends on are
//!
//! 1. the number of distinct exponent byte-sequences (the paper reports
//!    < 2,000 of 65,536 for most datasets) and the skew of their frequency
//!    distribution (Fig. 3a),
//! 2. the entropy of the mantissa bytes (near-random for the
//!    hard-to-compress datasets, Fig. 1 / Fig. 3b), and
//! 3. exact value repetition for the easy-to-compress outlier `msg_sppm`.
//!
//! Each generator here is seeded and tuned to land in the published
//! compressibility band of its namesake (see [`spec::PaperRow`] for the
//! paper's Table III numbers, kept for comparison in EXPERIMENTS.md).

pub mod generators;
pub mod permute;
pub mod rng;
pub mod spec;

pub use permute::{permute, permute_with_seed};
pub use rng::{Rng, SplitMix64};
pub use spec::{DatasetSpec, PaperRow};

/// The 20 datasets of the paper's Table III, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DatasetId {
    GtsChkpZeon,
    GtsChkpZion,
    GtsPhiL,
    GtsPhiNl,
    FlashGamc,
    FlashVelx,
    FlashVely,
    MsgBt,
    MsgLu,
    MsgSp,
    MsgSppm,
    MsgSweep3d,
    NumBrain,
    NumComet,
    NumControl,
    NumPlasma,
    ObsError,
    ObsInfo,
    ObsSpitzer,
    ObsTemp,
}

impl DatasetId {
    /// All datasets in Table III order.
    pub const ALL: [DatasetId; 20] = [
        DatasetId::GtsChkpZeon,
        DatasetId::GtsChkpZion,
        DatasetId::GtsPhiL,
        DatasetId::GtsPhiNl,
        DatasetId::FlashGamc,
        DatasetId::FlashVelx,
        DatasetId::FlashVely,
        DatasetId::MsgBt,
        DatasetId::MsgLu,
        DatasetId::MsgSp,
        DatasetId::MsgSppm,
        DatasetId::MsgSweep3d,
        DatasetId::NumBrain,
        DatasetId::NumComet,
        DatasetId::NumControl,
        DatasetId::NumPlasma,
        DatasetId::ObsError,
        DatasetId::ObsInfo,
        DatasetId::ObsSpitzer,
        DatasetId::ObsTemp,
    ];

    /// Dataset name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::GtsChkpZeon => "gts_chkp_zeon",
            DatasetId::GtsChkpZion => "gts_chkp_zion",
            DatasetId::GtsPhiL => "gts_phi_l",
            DatasetId::GtsPhiNl => "gts_phi_nl",
            DatasetId::FlashGamc => "flash_gamc",
            DatasetId::FlashVelx => "flash_velx",
            DatasetId::FlashVely => "flash_vely",
            DatasetId::MsgBt => "msg_bt",
            DatasetId::MsgLu => "msg_lu",
            DatasetId::MsgSp => "msg_sp",
            DatasetId::MsgSppm => "msg_sppm",
            DatasetId::MsgSweep3d => "msg_sweep3d",
            DatasetId::NumBrain => "num_brain",
            DatasetId::NumComet => "num_comet",
            DatasetId::NumControl => "num_control",
            DatasetId::NumPlasma => "num_plasma",
            DatasetId::ObsError => "obs_error",
            DatasetId::ObsInfo => "obs_info",
            DatasetId::ObsSpitzer => "obs_spitzer",
            DatasetId::ObsTemp => "obs_temp",
        }
    }

    /// Look up a dataset by its paper name.
    pub fn from_name(name: &str) -> Option<DatasetId> {
        DatasetId::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// The generator recipe and published reference numbers.
    pub fn spec(self) -> DatasetSpec {
        spec::spec_for(self)
    }

    /// Generate `n` doubles of this dataset (deterministic per id).
    pub fn generate(self, n: usize) -> Vec<f64> {
        self.spec().generate(n)
    }

    /// Generate the dataset as raw little-endian bytes.
    pub fn generate_bytes(self, n: usize) -> Vec<u8> {
        let values = self.generate(n);
        let mut out = Vec::with_capacity(values.len() * 8);
        for v in &values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Generate `n` single-precision values (the same field demoted to f32 —
    /// the paper notes PRIMACY applies to other precisions; §IV-B).
    pub fn generate_f32(self, n: usize) -> Vec<f32> {
        self.generate(n).into_iter().map(|v| v as f32).collect()
    }

    /// Generate the single-precision dataset as raw little-endian bytes.
    pub fn generate_f32_bytes(self, n: usize) -> Vec<u8> {
        let values = self.generate_f32(n);
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in &values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_datasets_with_unique_names() {
        assert_eq!(DatasetId::ALL.len(), 20);
        let mut names: Vec<&str> = DatasetId::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn from_name_roundtrips() {
        for d in DatasetId::ALL {
            assert_eq!(DatasetId::from_name(d.name()), Some(d));
        }
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        for d in [DatasetId::GtsPhiL, DatasetId::MsgSppm, DatasetId::ObsError] {
            let a = d.generate(4096);
            let b = d.generate(4096);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn different_datasets_differ() {
        let a = DatasetId::GtsPhiL.generate(1000);
        let b = DatasetId::GtsPhiNl.generate(1000);
        assert_ne!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn values_are_finite() {
        for d in DatasetId::ALL {
            let values = d.generate(2000);
            assert_eq!(values.len(), 2000);
            let non_finite = values.iter().filter(|v| !v.is_finite()).count();
            assert_eq!(non_finite, 0, "{d} produced non-finite values");
        }
    }

    #[test]
    fn f32_generation_matches_demoted_f64() {
        let d = DatasetId::FlashVelx;
        let f64s = d.generate(500);
        let f32s = d.generate_f32(500);
        assert_eq!(f32s.len(), 500);
        for (a, b) in f32s.iter().zip(&f64s) {
            assert_eq!(a.to_bits(), (*b as f32).to_bits());
        }
        let bytes = d.generate_f32_bytes(500);
        assert_eq!(bytes.len(), 2000);
        assert_eq!(&bytes[..4], &f32s[0].to_le_bytes());
    }

    #[test]
    fn bytes_are_le_encoding_of_values() {
        let d = DatasetId::NumComet;
        let values = d.generate(100);
        let bytes = d.generate_bytes(100);
        assert_eq!(bytes.len(), 800);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(&bytes[i * 8..i * 8 + 8], &v.to_le_bytes());
        }
    }
}
