//! Per-dataset generator recipes and the paper's published reference
//! numbers (Table III), kept side by side so benchmark output can print
//! paper-vs-measured comparisons.

use crate::generators;
use crate::DatasetId;

/// The stochastic process a dataset is drawn from.
#[derive(Debug, Clone, PartialEq)]
pub enum Process {
    /// Quasi-periodic field + white noise (GTS/FLASH-style fields).
    Smooth {
        /// Constant offset of the field.
        base: f64,
        /// Amplitudes of the sinusoidal modes.
        amps: [f64; 3],
        /// Standard deviation of additive white noise.
        noise: f64,
    },
    /// Mean-reverting Gaussian random walk (checkpoint particle state).
    Walk {
        /// Long-run mean.
        center: f64,
        /// Per-step standard deviation.
        step: f64,
    },
    /// Log-uniform magnitudes over several decades (observational data).
    LogUniform {
        /// Smallest magnitude.
        min_mag: f64,
        /// Orders of magnitude spanned.
        decades: f64,
        /// Fraction of negative values.
        neg: f64,
    },
    /// Runs drawn from a small pool of exact values (`msg_sppm`-style).
    PooledRuns {
        /// Number of distinct values in the pool.
        pool: usize,
        /// Mean run length.
        mean_run: usize,
        /// Fraction of runs that are exactly zero.
        zero_frac: f64,
    },
}

/// Compression numbers the paper reports for a dataset (Table III):
/// compression ratios for original and permuted ("Linearization CR") data,
/// and compression/decompression throughputs in MB/s on a 2.2 GHz Opteron.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// zlib compression ratio on the original layout.
    pub zlib_cr: f64,
    /// PRIMACY compression ratio on the original layout.
    pub primacy_cr: f64,
    /// zlib CR on the permuted dataset.
    pub zlib_lin_cr: f64,
    /// PRIMACY CR on the permuted dataset.
    pub primacy_lin_cr: f64,
    /// zlib compression throughput (MB/s).
    pub zlib_ctp: f64,
    /// PRIMACY compression throughput (MB/s).
    pub primacy_ctp: f64,
    /// zlib decompression throughput (MB/s).
    pub zlib_dtp: f64,
    /// PRIMACY decompression throughput (MB/s).
    pub primacy_dtp: f64,
}

/// Full recipe for one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this emulates.
    pub id: DatasetId,
    /// RNG seed (unique per dataset).
    pub seed: u64,
    /// Underlying stochastic process.
    pub process: Process,
    /// Zero this many low-order mantissa bits (emulates values recorded at
    /// fixed precision; the main knob for zlib's compression ratio).
    pub truncate_bits: u32,
    /// Overwrite this fraction of values with exact 0.0 (masked regions).
    pub zero_fill: f64,
    /// The paper's Table III row for this dataset.
    pub paper: PaperRow,
}

impl DatasetSpec {
    /// Generate `n` doubles according to the recipe.
    pub fn generate(&self, n: usize) -> Vec<f64> {
        let mut values = match self.process {
            Process::Smooth { base, amps, noise } => {
                generators::smooth_field(self.seed, n, base, &amps, noise)
            }
            Process::Walk { center, step } => generators::random_walk(self.seed, n, center, step),
            Process::LogUniform {
                min_mag,
                decades,
                neg,
            } => generators::log_uniform(self.seed, n, min_mag, decades, neg),
            Process::PooledRuns {
                pool,
                mean_run,
                zero_frac,
            } => generators::pooled_runs(self.seed, n, pool, mean_run, zero_frac),
        };
        if self.truncate_bits > 0 {
            truncate_mantissa(&mut values, self.truncate_bits);
        }
        if self.zero_fill > 0.0 {
            generators::sprinkle_fill(self.seed ^ 0xF177_F177, &mut values, self.zero_fill, 0.0);
        }
        values
    }
}

/// Zero the low `bits` bits of each double's mantissa (values recorded at
/// fixed precision keep their magnitude; only sub-precision noise is
/// dropped).
pub fn truncate_mantissa(values: &mut [f64], bits: u32) {
    debug_assert!(bits <= 52);
    let mask = !((1u64 << bits) - 1);
    for v in values.iter_mut() {
        *v = f64::from_bits(v.to_bits() & mask);
    }
}

macro_rules! paper {
    ($zc:expr, $pc:expr, $zl:expr, $pl:expr, $zt:expr, $pt:expr, $zd:expr, $pd:expr) => {
        PaperRow {
            zlib_cr: $zc,
            primacy_cr: $pc,
            zlib_lin_cr: $zl,
            primacy_lin_cr: $pl,
            zlib_ctp: $zt,
            primacy_ctp: $pt,
            zlib_dtp: $zd,
            primacy_dtp: $pd,
        }
    };
}

/// The recipe table. Seeds are arbitrary but fixed; process parameters are
/// tuned so the measured zlib CR lands near the paper's value for each
/// dataset (the property PRIMACY's relative gain depends on).
pub fn spec_for(id: DatasetId) -> DatasetSpec {
    use DatasetId::*;
    let (process, truncate_bits, zero_fill, paper) = match id {
        GtsChkpZeon => (
            Process::Walk {
                center: 10.0,
                step: 0.7,
            },
            0,
            0.0,
            paper!(1.04, 1.14, 1.04, 1.12, 18.23, 84.87, 87.13, 275.22),
        ),
        GtsChkpZion => (
            Process::Walk {
                center: 12.0,
                step: 0.8,
            },
            0,
            0.0,
            paper!(1.04, 1.16, 1.04, 1.12, 18.21, 88.93, 90.83, 279.96),
        ),
        GtsPhiL => (
            Process::Smooth {
                base: 0.0,
                amps: [1.0, 0.3, 0.1],
                noise: 0.02,
            },
            0,
            0.0,
            paper!(1.04, 1.15, 1.04, 1.11, 17.14, 54.19, 95.42, 201.01),
        ),
        GtsPhiNl => (
            Process::Smooth {
                base: 0.0,
                amps: [1.5, 0.5, 0.2],
                noise: 0.05,
            },
            0,
            0.0,
            paper!(1.05, 1.15, 1.04, 1.12, 17.02, 54.27, 89.25, 202.20),
        ),
        FlashGamc => (
            Process::Smooth {
                base: 1.4,
                amps: [0.08, 0.02, 0.0],
                noise: 0.005,
            },
            14,
            0.0,
            paper!(1.29, 1.47, 1.16, 1.32, 20.92, 57.06, 64.4, 214.99),
        ),
        FlashVelx => (
            Process::Smooth {
                base: 0.0,
                amps: [120.0, 30.0, 8.0],
                noise: 4.0,
            },
            6,
            0.0,
            paper!(1.11, 1.31, 1.05, 1.15, 19.04, 184.64, 76.47, 382.16),
        ),
        FlashVely => (
            Process::Smooth {
                base: 0.0,
                amps: [90.0, 25.0, 6.0],
                noise: 3.0,
            },
            8,
            0.0,
            paper!(1.14, 1.31, 1.06, 1.16, 19.14, 183.92, 73.04, 380.74),
        ),
        MsgBt => (
            Process::Walk {
                center: 100.0,
                step: 0.5,
            },
            6,
            0.0,
            paper!(1.13, 1.31, 1.08, 1.14, 19.23, 23.64, 85.55, 149.91),
        ),
        MsgLu => (
            Process::Walk {
                center: 50.0,
                step: 0.6,
            },
            0,
            0.0,
            paper!(1.06, 1.24, 1.04, 1.12, 17.57, 133.92, 89.57, 317.60),
        ),
        MsgSp => (
            Process::Smooth {
                base: 10.0,
                amps: [5.0, 2.0, 0.5],
                noise: 0.4,
            },
            4,
            0.0,
            paper!(1.10, 1.30, 1.04, 1.14, 18.80, 76.05, 76.37, 257.28),
        ),
        MsgSppm => (
            Process::PooledRuns {
                pool: 96,
                mean_run: 2,
                zero_frac: 0.15,
            },
            0,
            0.0,
            paper!(7.42, 7.17, 2.13, 1.99, 77.35, 66.86, 32.11, 198.91),
        ),
        MsgSweep3d => (
            Process::Smooth {
                base: 1e-3,
                amps: [5e-4, 1e-4, 0.0],
                noise: 1e-4,
            },
            4,
            0.0,
            paper!(1.09, 1.31, 1.07, 1.17, 18.29, 24.52, 84.13, 238.22),
        ),
        NumBrain => (
            Process::Walk {
                center: 0.0,
                step: 0.01,
            },
            2,
            0.0,
            paper!(1.06, 1.24, 1.06, 1.17, 17.69, 134.29, 84.94, 329.86),
        ),
        NumComet => (
            Process::LogUniform {
                min_mag: 1e-3,
                decades: 5.0,
                neg: 0.0,
            },
            8,
            0.0,
            paper!(1.16, 1.27, 1.13, 1.17, 17.13, 19.73, 83.02, 117.76),
        ),
        NumControl => (
            Process::Walk {
                center: 0.0,
                step: 1.0,
            },
            2,
            0.0,
            paper!(1.06, 1.13, 1.02, 1.08, 17.50, 21.11, 93.6, 193.97),
        ),
        NumPlasma => (
            Process::Smooth {
                base: 1.0,
                amps: [0.5, 0.1, 0.0],
                noise: 0.05,
            },
            22,
            0.0,
            paper!(1.78, 2.16, 1.37, 1.50, 28.31, 37.32, 67.15, 157.42),
        ),
        ObsError => (
            Process::LogUniform {
                min_mag: 1e-5,
                decades: 6.0,
                neg: 0.4,
            },
            18,
            0.08,
            paper!(1.44, 1.59, 1.16, 1.26, 24.21, 26.37, 69.13, 137.68),
        ),
        ObsInfo => (
            Process::Smooth {
                base: 300.0,
                amps: [50.0, 10.0, 2.0],
                noise: 3.0,
            },
            6,
            0.0,
            paper!(1.15, 1.25, 1.06, 1.15, 19.82, 130.02, 86.59, 335.65),
        ),
        ObsSpitzer => (
            Process::LogUniform {
                min_mag: 1e-2,
                decades: 3.0,
                neg: 0.2,
            },
            12,
            0.0,
            paper!(1.23, 1.39, 1.23, 1.38, 18.65, 22.07, 65.39, 113.98),
        ),
        ObsTemp => (
            Process::Smooth {
                base: 285.0,
                amps: [10.0, 3.0, 1.0],
                noise: 3.0,
            },
            0,
            0.0,
            paper!(1.04, 1.14, 1.04, 1.14, 17.76, 89.40, 88.99, 305.78),
        ),
    };
    // Seed: stable hash of the enum discriminant.
    let seed = 0xC0FF_EE00u64 + id as u64 * 7919;
    DatasetSpec {
        id,
        seed,
        process,
        truncate_bits,
        zero_fill,
        paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_mantissa_zeroes_low_bits() {
        let mut v = vec![std::f64::consts::PI, -std::f64::consts::E];
        truncate_mantissa(&mut v, 20);
        for x in &v {
            assert_eq!(x.to_bits() & ((1 << 20) - 1), 0);
        }
        // Magnitude preserved to ~1e-10 relative error.
        assert!((v[0] - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn every_dataset_has_a_spec() {
        for d in DatasetId::ALL {
            let s = spec_for(d);
            assert_eq!(s.id, d);
            assert!(s.paper.zlib_cr >= 1.0);
            assert!(s.paper.primacy_ctp > s.paper.zlib_ctp || d == DatasetId::MsgSppm);
        }
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = DatasetId::ALL.iter().map(|&d| spec_for(d).seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20);
    }

    #[test]
    fn paper_says_primacy_beats_zlib_cr_on_19_of_20() {
        let wins = DatasetId::ALL
            .iter()
            .filter(|&&d| {
                let p = spec_for(d).paper;
                p.primacy_cr > p.zlib_cr
            })
            .count();
        assert_eq!(wins, 19); // msg_sppm is the published exception
    }

    #[test]
    fn truncated_datasets_have_zero_low_bits() {
        let s = spec_for(DatasetId::NumPlasma);
        let v = s.generate(1000);
        let mask = (1u64 << s.truncate_bits) - 1;
        assert!(v.iter().all(|x| x.to_bits() & mask == 0));
    }

    #[test]
    fn zero_fill_applied() {
        let s = spec_for(DatasetId::ObsError);
        let v = s.generate(50_000);
        let zeros = v.iter().filter(|&&x| x == 0.0).count() as f64 / v.len() as f64;
        assert!(zeros > 0.05, "zero fraction {zeros}");
    }
}
