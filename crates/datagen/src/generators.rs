//! Field generators: the primitive stochastic processes the dataset specs
//! are assembled from.
//!
//! Every generator takes an explicit seed and is fully deterministic. The
//! knobs map directly onto the statistics PRIMACY responds to: the *dynamic
//! range* and *sign mixture* control how many distinct exponent
//! byte-sequences appear; *quantization* controls mantissa-byte entropy;
//! *value pooling / runs* control exact repetition.

use crate::rng::Rng;

/// Standard normal sample via Box–Muller (the in-tree [`Rng`] ships only
/// uniform sources; see [`Rng::standard_normal`]).
pub fn normal(rng: &mut Rng) -> f64 {
    rng.standard_normal()
}

/// A smooth quasi-periodic field plus white noise:
/// `base + Σ amp_k · sin(freq_k · i + phase_k) + noise·N(0,1)`.
///
/// Narrow dynamic range (few exponent sequences), fully random mantissa —
/// the signature of the hard-to-compress GTS/FLASH fields.
pub fn smooth_field(seed: u64, n: usize, base: f64, amplitudes: &[f64], noise: f64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let modes: Vec<(f64, f64, f64)> = amplitudes
        .iter()
        .map(|&a| {
            (
                a,
                rng.gen_range(0.001..0.1),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let t = i as f64;
            let signal: f64 = modes.iter().map(|&(a, f, p)| a * (f * t + p).sin()).sum();
            base + signal + noise * normal(&mut rng)
        })
        .collect()
}

/// A Gaussian random walk: `x_{i+1} = x_i + step·N(0,1)`, reflected softly
/// towards `center` so the exponent range stays bounded.
pub fn random_walk(seed: u64, n: usize, center: f64, step: f64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut x = center;
    (0..n)
        .map(|_| {
            x += step * normal(&mut rng) - 0.001 * (x - center);
            x
        })
        .collect()
}

/// Log-uniform magnitudes over `decades` orders of magnitude, with a
/// `negative_fraction` of sign flips: spreads values over many exponents,
/// like observational error/irradiance data.
pub fn log_uniform(
    seed: u64,
    n: usize,
    min_magnitude: f64,
    decades: f64,
    negative_fraction: f64,
) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let e: f64 = rng.gen_range(0.0..decades);
            let mantissa: f64 = rng.gen_range(1.0..10.0);
            let v = min_magnitude * 10f64.powf(e) * mantissa;
            if rng.gen_f64() < negative_fraction {
                -v
            } else {
                v
            }
        })
        .collect()
}

/// Quantize values to `scale` (e.g. 1e-3 rounds to 3 decimals). Rounding
/// zeroes much of the mantissa tail, emulating sensor data recorded at fixed
/// precision — the easier-to-compress observational datasets.
pub fn quantize(values: &mut [f64], scale: f64) {
    for v in values.iter_mut() {
        *v = (*v / scale).round() * scale;
    }
}

/// Draw from a small pool of exact values with geometric run lengths:
/// `msg_sppm`-style easy-to-compress data (zlib CR > 7 comes from exact
/// byte-level repetition).
pub fn pooled_runs(
    seed: u64,
    n: usize,
    pool_size: usize,
    mean_run: usize,
    zero_fraction: f64,
) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let pool: Vec<f64> = (0..pool_size)
        .map(|_| (normal(&mut rng) * 100.0 * 8.0).round() / 8.0)
        .collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = if rng.gen_f64() < zero_fraction {
            0.0
        } else {
            pool[rng.gen_range(0..pool_size)]
        };
        let run = 1 + rng.gen_range(0..mean_run * 2);
        for _ in 0..run.min(n - out.len()) {
            out.push(v);
        }
    }
    out
}

/// Overwrite a `fraction` of positions (chosen pseudo-randomly) with `value`.
/// Emulates masked/fill-value regions in satellite products.
pub fn sprinkle_fill(seed: u64, values: &mut [f64], fraction: f64, value: f64) {
    let mut rng = Rng::seed_from_u64(seed);
    for v in values.iter_mut() {
        if rng.gen_f64() < fraction {
            *v = value;
        }
    }
}

/// Element-wise sum of two equally long series.
pub fn add(a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += *y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn smooth_field_is_band_limited() {
        let v = smooth_field(1, 10_000, 50.0, &[3.0, 1.0], 0.01);
        let (min, max) = v
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!(min > 40.0 && max < 60.0, "range [{min}, {max}]");
    }

    #[test]
    fn random_walk_stays_bounded() {
        let v = random_walk(2, 100_000, 0.0, 0.1);
        assert!(v.iter().all(|x| x.abs() < 100.0));
    }

    #[test]
    fn log_uniform_spans_decades() {
        let v = log_uniform(3, 50_000, 1e-6, 8.0, 0.3);
        let negatives = v.iter().filter(|&&x| x < 0.0).count();
        assert!((negatives as f64 / v.len() as f64 - 0.3).abs() < 0.02);
        let max_mag = v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let min_mag = v.iter().fold(f64::MAX, |m, &x| m.min(x.abs()));
        assert!(max_mag / min_mag > 1e6, "span {}", max_mag / min_mag);
    }

    #[test]
    fn quantize_zeroes_mantissa_tails() {
        let mut v = vec![1.23456789, 2.3456789, 1000.987654];
        quantize(&mut v, 0.25);
        assert_eq!(v, vec![1.25, 2.25, 1001.0]);
    }

    #[test]
    fn pooled_runs_repeat_values() {
        let v = pooled_runs(4, 100_000, 16, 8, 0.3);
        let mut uniq: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 17, "{} unique values", uniq.len());
        // Runs: a large fraction of adjacent pairs must be equal.
        let repeats = v.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats * 2 > v.len(), "{repeats} adjacent repeats");
    }

    #[test]
    fn sprinkle_fill_hits_requested_fraction() {
        let mut v = vec![1.0; 100_000];
        sprinkle_fill(5, &mut v, 0.25, -999.0);
        let filled = v.iter().filter(|&&x| x == -999.0).count();
        assert!((filled as f64 / v.len() as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            smooth_field(9, 100, 1.0, &[1.0], 0.5),
            smooth_field(9, 100, 1.0, &[1.0], 0.5)
        );
        assert_eq!(
            log_uniform(9, 100, 1e-3, 4.0, 0.5),
            log_uniform(9, 100, 1e-3, 4.0, 0.5)
        );
    }
}
