//! Vendored pseudo-random number generator: SplitMix64 seeding a
//! xoshiro256++ core.
//!
//! The workspace has a zero-external-dependency policy (see DESIGN.md), so
//! instead of pulling in `rand` this module implements the two public-domain
//! generators by Blackman & Vigna (<https://prng.di.unimi.it/>):
//!
//! * [`SplitMix64`] — a tiny 64-bit generator whose only job here is to
//!   expand a one-word seed into the 256-bit xoshiro state (the expansion
//!   recommended by the xoshiro authors, and the same one `rand` uses for
//!   `seed_from_u64`).
//! * [`Rng`] — xoshiro256++, the general-purpose core. All datagen
//!   determinism flows from an explicit `u64` seed through this type.
//!
//! Both are reproduced from the published reference C code and pinned by
//! known-answer tests below, so the synthetic datasets can never drift
//! silently across toolchains or refactors.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 (Steele, Lea & Flood; Vigna's public-domain C version).
///
/// Passes BigCrush on its own, but its role in this crate is seed
/// expansion: every distinct `u64` seed yields a well-mixed, distinct
/// xoshiro256++ state even for adjacent seeds like 0, 1, 2.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed word.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's deterministic random source.
///
/// 256 bits of state, period 2²⁵⁶−1, passes BigCrush/PractRand; the `++`
/// scrambler makes all 64 output bits usable (unlike the `+` variant whose
/// low bits are weak). Seeded via [`SplitMix64`] expansion.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expand a one-word seed into the full 256-bit state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output (the xoshiro256++ scrambler + state transition).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fill `buf` with pseudo-random bytes (little-endian words, tail
    /// truncated).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision: the standard
    /// `(x >> 11) · 2⁻⁵³` construction.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; supports `f64` and `usize` ranges
    /// (`lo..hi`) and inclusive `usize` ranges (`lo..=hi`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform integer in `[0, bound)` by rejection sampling
    /// (Lemire-style widening multiply, rejecting the biased low region).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Zone is the largest multiple of `bound` that fits in 2^64.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) <= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Standard normal sample N(0, 1) via Box–Muller (only the cosine
    /// branch; one uniform pair per sample keeps the stream arithmetic
    /// simple and reproducible).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.gen_f64();
            let u2 = self.gen_f64();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        debug_assert!(self.start < self.end);
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == usize::MAX {
            return rng.next_u64() as usize;
        }
        lo + rng.bounded_u64((hi - lo + 1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs computed from Vigna's published C sources (the
    /// seed-0 head `e220a8397b1dcdaf…` is the widely circulated SplitMix64
    /// test vector).
    #[test]
    fn splitmix64_known_answers() {
        let mut sm = SplitMix64::new(0);
        let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec,
                0x1b39896a51a8749b,
            ]
        );

        let mut sm = SplitMix64::new(0x0123456789abcdef);
        let got: Vec<u64> = (0..5).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x157a3807a48faa9d,
                0xd573529b34a1d093,
                0x2f90b72e996dccbe,
                0xa2d419334c4667ec,
                0x01404ce914938008,
            ]
        );
    }

    #[test]
    fn xoshiro256pp_known_answers() {
        let mut rng = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
                0x7eca04ebaf4a5eea,
            ]
        );

        let mut rng = Rng::seed_from_u64(42);
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
                0xcb231c3874846a73,
            ]
        );
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut buf = [0u8; 19]; // deliberately not a multiple of 8
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..], &w2[..3]);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5f64);
            assert!((-3.0..7.5).contains(&x));
            let i = rng.gen_range(5..17usize);
            assert!((5..17).contains(&i));
            let j = rng.gen_range(5..=17usize);
            assert!((5..=17).contains(&j));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9..=9usize), 9);
    }

    #[test]
    fn bounded_u64_is_roughly_uniform() {
        // Chi-square-ish smoke test: 16 buckets, 160k draws; each bucket
        // expectation 10k, tolerate ±5%.
        let mut rng = Rng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[rng.gen_range(0..16usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_500..=10_500).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_a_uniform_permutation() {
        // Permutation uniformity smoke test on 4 elements: 24 permutations,
        // 48k shuffles, each expected 2000 times; tolerate ±15%.
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..48_000 {
            let mut v = [0u8, 1, 2, 3];
            rng.shuffle(&mut v);
            *counts.entry(v).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 24, "all permutations must occur");
        for (perm, &c) in &counts {
            assert!((1_700..=2_300).contains(&c), "{perm:?}: {c}");
        }
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(100);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
