//! `primacy` — command-line front end for the PRIMACY compression pipeline.
//!
//! ```text
//! primacy compress   <input> <output> [--codec zlib|lzr|bwt] [--chunk-kb N]
//!                    [--row-linear] [--no-isobar] [--reuse-index T] [--threads N]
//! primacy decompress <input> <output>
//! primacy stats      <input>                 # analyze a raw f64 file
//! primacy gen        <dataset> <output> [--elems N]   # synthetic datasets
//! primacy bench      <input>                 # compare codecs on a file
//! primacy list                               # list synthetic datasets
//! ```

use primacy_bench::json::Value;
use primacy_codecs::CodecKind;
use primacy_core::analysis;
use primacy_core::{
    resolve_threads, ArchiveReader, ArchiveWriter, ElementReader, IndexPolicy, Linearization,
    PrimacyCompressor, PrimacyConfig, STAGES,
};
use primacy_datagen::DatasetId;
use primacy_trace as trace;
use primacy_trace::Collector;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  primacy compress <input> <output> [--codec zlib|lzr|bwt|fpc|fpz] \
         [--chunk-kb N] [--row-linear] [--no-isobar] [--reuse-index T] \
         [--threads N (0 = auto-detect)] [--trace]\n  \
         primacy decompress <input> <output> [--trace]\n  \
         primacy stats <input>\n  \
         primacy gen <dataset> <output> [--elems N]\n  \
         primacy bench <input>\n  \
         primacy archive <input> <output.prma> [compress flags] [--overlap] [--trace]\n  \
         primacy extract <input.prma> <output> [--start N --count N]\n  \
         primacy info <input.prma>\n  \
         primacy verify <input.prim|input.prma> [--trace]\n  \
         primacy cat <input.prma>\n  \
         primacy list"
    );
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// The `--trace` sink: one process-wide collector the pipeline's per-thread
/// aggregates merge into.
static TRACE_COLLECTOR: Collector = Collector::new();

/// Install the trace collector when `--trace` was passed. Returns whether
/// tracing is on.
fn setup_trace(args: &[String]) -> Result<bool, String> {
    if !args.iter().any(|a| a == "--trace") {
        return Ok(false);
    }
    trace::install(&TRACE_COLLECTOR).map_err(|e| e.to_string())?;
    Ok(true)
}

/// Print the `--trace` report: the human stage table, then the same
/// breakdown as one line of JSON (stage seconds, counters, wall seconds).
fn report_trace(wall: Duration) {
    trace::flush_thread();
    let agg = TRACE_COLLECTOR.snapshot();
    print!("{}", trace::render_table(&agg, &STAGES, wall));
    let stages = Value::object(
        STAGES
            .iter()
            .map(|&s| (s, Value::Number(agg.span_total(s).as_secs_f64()))),
    );
    let counters = Value::object(
        agg.counters
            .iter()
            .map(|(&k, &v)| (k, Value::Number(v as f64))),
    );
    let doc = Value::object([
        ("wall_s", Value::Number(wall.as_secs_f64())),
        ("stages", stages),
        ("counters", counters),
    ]);
    println!("{}", doc.to_json());
}

fn build_config(args: &[String]) -> Result<PrimacyConfig, String> {
    let mut cfg = PrimacyConfig::default();
    if let Some(codec) = args
        .iter()
        .position(|a| a == "--codec")
        .and_then(|i| args.get(i + 1))
    {
        cfg.codec = match codec.as_str() {
            "zlib" => CodecKind::Zlib,
            "lzr" => CodecKind::Lzr,
            "bwt" => CodecKind::Bwt,
            "fpc" => CodecKind::Fpc,
            "fpz" => CodecKind::Fpz,
            other => return Err(format!("unknown codec '{other}'")),
        };
    }
    if let Some(kb) = parse_flag::<usize>(args, "--chunk-kb") {
        cfg.chunk_bytes = kb * 1024;
    }
    if args.iter().any(|a| a == "--row-linear") {
        cfg.linearization = Linearization::Row;
    }
    if args.iter().any(|a| a == "--no-isobar") {
        cfg.isobar.enabled = false;
    }
    if let Some(t) = parse_flag::<f64>(args, "--reuse-index") {
        cfg.index_policy = IndexPolicy::Reuse {
            correlation_threshold: t,
        };
    }
    Ok(cfg)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compress" => {
            let input = args.get(1).ok_or("missing input path")?;
            let output = args.get(2).ok_or("missing output path")?;
            let cfg = build_config(&args)?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let aligned = data.len() / cfg.element_size * cfg.element_size;
            if aligned != data.len() {
                return Err(format!(
                    "{input}: length {} is not a multiple of the element size {}",
                    data.len(),
                    cfg.element_size
                ));
            }
            let compressor = PrimacyCompressor::try_new(cfg).map_err(|e| e.to_string())?;
            let tracing = setup_trace(&args)?;
            let t0 = Instant::now();
            let (out, stats) = if let Some(threads) = parse_flag::<usize>(&args, "--threads") {
                let out = compressor
                    .compress_bytes_parallel(&data, resolve_threads(threads))
                    .map_err(|e| e.to_string())?;
                (out, None)
            } else {
                let (out, stats) = compressor
                    .compress_bytes_with_stats(&data)
                    .map_err(|e| e.to_string())?;
                (out, Some(stats))
            };
            let wall = t0.elapsed();
            let secs = wall.as_secs_f64();
            if tracing {
                report_trace(wall);
            }
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            println!(
                "{} -> {} bytes (CR {:.3}) in {:.2}s ({:.1} MB/s)",
                data.len(),
                out.len(),
                data.len() as f64 / out.len() as f64,
                secs,
                data.len() as f64 / 1e6 / secs
            );
            if let Some(stats) = stats {
                println!(
                    "chunks: {} ({} own indexes), ISOBAR compressible fraction: {:.2}",
                    stats.chunks, stats.own_index_chunks, stats.isobar_compressible_fraction
                );
                let t = stats.timings;
                println!(
                    "stage times: split {:.0?} freq {:.0?} idmap {:.0?} linearize {:.0?} isobar {:.0?} codec {:.0?}",
                    t.split, t.frequency_analysis, t.id_mapping, t.linearization, t.isobar, t.codec
                );
            }
            Ok(())
        }
        "decompress" => {
            let input = args.get(1).ok_or("missing input path")?;
            let output = args.get(2).ok_or("missing output path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let compressor = PrimacyCompressor::new(PrimacyConfig::default());
            let tracing = setup_trace(&args)?;
            let t0 = Instant::now();
            let out = compressor
                .decompress_bytes(&data)
                .map_err(|e| e.to_string())?;
            let wall = t0.elapsed();
            let secs = wall.as_secs_f64();
            if tracing {
                report_trace(wall);
            }
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            println!(
                "{} -> {} bytes in {:.2}s ({:.1} MB/s)",
                data.len(),
                out.len(),
                secs,
                out.len() as f64 / 1e6 / secs
            );
            Ok(())
        }
        "stats" => {
            let input = args.get(1).ok_or("missing input path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            if data.len() % 8 != 0 {
                return Err("stats expects a raw little-endian f64 file".into());
            }
            let values: Vec<f64> = data
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            println!("{}: {} doubles", input, values.len());
            println!(
                "distinct exponent byte-sequences: {} of 65536",
                analysis::unique_exponent_sequences(&values)
            );
            let p = analysis::bit_probability(&values);
            println!("bit-majority probability per byte (bit 0 = sign):");
            for byte in 0..8 {
                let mean: f64 = p[byte * 8..(byte + 1) * 8].iter().sum::<f64>() / 8.0;
                println!("  byte {byte}: {mean:.3}");
            }
            Ok(())
        }
        "gen" => {
            let name = args.get(1).ok_or("missing dataset name")?;
            let output = args.get(2).ok_or("missing output path")?;
            let elems = parse_flag::<usize>(&args, "--elems").unwrap_or(1 << 20);
            let id = DatasetId::from_name(name)
                .ok_or_else(|| format!("unknown dataset '{name}' (try `primacy list`)"))?;
            let bytes = id.generate_bytes(elems);
            std::fs::write(output, &bytes).map_err(|e| format!("write {output}: {e}"))?;
            println!("wrote {} doubles ({} bytes) of {id}", elems, bytes.len());
            Ok(())
        }
        "bench" => {
            let input = args.get(1).ok_or("missing input path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let aligned = &data[..data.len() / 8 * 8];
            println!(
                "{:<10} {:>9} {:>10} {:>10}",
                "method", "CR", "comp MB/s", "dec MB/s"
            );
            for kind in CodecKind::ALL {
                let codec = kind.build();
                let t0 = Instant::now();
                let comp = codec.compress(aligned).map_err(|e| e.to_string())?;
                let cs = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let back = codec.decompress(&comp).map_err(|e| e.to_string())?;
                let ds = t0.elapsed().as_secs_f64();
                assert_eq!(back, aligned);
                println!(
                    "{:<10} {:>9.3} {:>10.1} {:>10.1}",
                    kind.to_string(),
                    aligned.len() as f64 / comp.len() as f64,
                    aligned.len() as f64 / 1e6 / cs,
                    aligned.len() as f64 / 1e6 / ds
                );
            }
            let compressor = PrimacyCompressor::new(PrimacyConfig::default());
            let t0 = Instant::now();
            let comp = compressor
                .compress_bytes(aligned)
                .map_err(|e| e.to_string())?;
            let cs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let back = compressor
                .decompress_bytes(&comp)
                .map_err(|e| e.to_string())?;
            let ds = t0.elapsed().as_secs_f64();
            assert_eq!(back, aligned);
            println!(
                "{:<10} {:>9.3} {:>10.1} {:>10.1}",
                "primacy",
                aligned.len() as f64 / comp.len() as f64,
                aligned.len() as f64 / 1e6 / cs,
                aligned.len() as f64 / 1e6 / ds
            );
            Ok(())
        }
        "archive" => {
            let input = args.get(1).ok_or("missing input path")?;
            let output = args.get(2).ok_or("missing output path")?;
            let cfg = build_config(&args)?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            if data.len() % cfg.element_size != 0 {
                return Err(format!(
                    "{input}: length {} is not a multiple of the element size {}",
                    data.len(),
                    cfg.element_size
                ));
            }
            let overlap = args.iter().any(|a| a == "--overlap");
            let threads = resolve_threads(parse_flag::<usize>(&args, "--threads").unwrap_or(0));
            let tracing = setup_trace(&args)?;
            let t0 = Instant::now();
            let mut w = if overlap {
                ArchiveWriter::with_overlap(Vec::new(), cfg, threads)
            } else {
                ArchiveWriter::new(Vec::new(), cfg)
            }
            .map_err(|e| e.to_string())?;
            w.append(&data).map_err(|e| e.to_string())?;
            let archive = w.finish().map_err(|e| e.to_string())?;
            let wall = t0.elapsed();
            if tracing {
                report_trace(wall);
            }
            let secs = wall.as_secs_f64();
            std::fs::write(output, &archive).map_err(|e| format!("write {output}: {e}"))?;
            println!(
                "{} -> {} bytes (CR {:.3}) in {:.2}s ({:.1} MB/s, {}); seekable archive with chunk directory",
                data.len(),
                archive.len(),
                data.len() as f64 / archive.len() as f64,
                secs,
                data.len() as f64 / 1e6 / secs.max(1e-9),
                if overlap {
                    format!("overlapped, {threads} compress threads")
                } else {
                    "bulk-synchronous".to_string()
                }
            );
            Ok(())
        }
        "extract" => {
            let input = args.get(1).ok_or("missing input path")?;
            let output = args.get(2).ok_or("missing output path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let r = ArchiveReader::open(&data).map_err(|e| e.to_string())?;
            let start = parse_flag::<u64>(&args, "--start").unwrap_or(0);
            let count = parse_flag::<usize>(&args, "--count")
                .unwrap_or((r.element_count() - start) as usize);
            let out = r.read_elements(start, count).map_err(|e| e.to_string())?;
            std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
            println!(
                "extracted elements {start}..{} ({} bytes)",
                start + count as u64,
                out.len()
            );
            Ok(())
        }
        "info" => {
            let input = args.get(1).ok_or("missing input path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let r = ArchiveReader::open(&data).map_err(|e| e.to_string())?;
            println!("{input}: PRIMACY archive");
            println!("  element size:  {} bytes", r.element_size());
            println!("  elements:      {}", r.element_count());
            println!("  chunks:        {}", r.chunk_count());
            println!(
                "  ratio:         {:.3}",
                (r.element_count() as f64 * r.element_size() as f64) / data.len() as f64
            );
            for i in 0..r.chunk_count().min(8) {
                let e = r.entry(i).expect("entry in range");
                println!(
                    "  chunk {i:>3}: offset {:>10}, {:>8} elements, crc {:08x}",
                    e.offset, e.elements, e.crc
                );
            }
            if r.chunk_count() > 8 {
                println!("  ... {} more chunks", r.chunk_count() - 8);
            }
            Ok(())
        }
        "cat" => {
            // Stream an archive's plaintext to stdout, one chunk in memory
            // at a time.
            let input = args.get(1).ok_or("missing input path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let r = ArchiveReader::open(&data).map_err(|e| e.to_string())?;
            let mut reader = ElementReader::new(&r);
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let n = std::io::copy(&mut reader, &mut lock).map_err(|e| e.to_string())?;
            eprintln!("{n} bytes written");
            Ok(())
        }
        "verify" => {
            let input = args.get(1).ok_or("missing input path")?;
            let data = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
            let tracing = setup_trace(&args)?;
            let t0 = Instant::now();
            let (bytes, kind) = if data.len() >= 4 && &data[..4] == b"PRMA" {
                let r = ArchiveReader::open(&data).map_err(|e| e.to_string())?;
                (
                    r.read_all_pipelined(4).map_err(|e| e.to_string())?.len(),
                    "archive",
                )
            } else {
                let c = PrimacyCompressor::new(PrimacyConfig::default());
                (
                    c.decompress_bytes(&data).map_err(|e| e.to_string())?.len(),
                    "stream",
                )
            };
            if tracing {
                report_trace(t0.elapsed());
            }
            println!(
                "{input}: OK ({kind}); {} compressed bytes -> {} plaintext bytes, all checksums verified in {:.2}s",
                data.len(),
                bytes,
                t0.elapsed().as_secs_f64()
            );
            Ok(())
        }
        "list" => {
            println!("synthetic datasets (stand-ins for the paper's Table III data):");
            for id in DatasetId::ALL {
                let p = id.spec().paper;
                println!(
                    "  {:<16} paper zlib CR {:.2}, paper PRIMACY CR {:.2}",
                    id.name(),
                    p.zlib_cr,
                    p.primacy_cr
                );
            }
            Ok(())
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flag_extracts_typed_values() {
        let a = args(&[
            "compress",
            "in",
            "out",
            "--chunk-kb",
            "512",
            "--threads",
            "4",
        ]);
        assert_eq!(parse_flag::<usize>(&a, "--chunk-kb"), Some(512));
        assert_eq!(parse_flag::<usize>(&a, "--threads"), Some(4));
        assert_eq!(parse_flag::<usize>(&a, "--missing"), None);
        // Flag present but value unparsable.
        let a = args(&["x", "--threads", "lots"]);
        assert_eq!(parse_flag::<usize>(&a, "--threads"), None);
        // Flag at the end with no value.
        let a = args(&["x", "--threads"]);
        assert_eq!(parse_flag::<usize>(&a, "--threads"), None);
    }

    #[test]
    fn build_config_maps_flags() {
        let a = args(&[
            "compress",
            "in",
            "out",
            "--codec",
            "bwt",
            "--chunk-kb",
            "256",
            "--row-linear",
            "--no-isobar",
            "--reuse-index",
            "0.9",
        ]);
        let cfg = build_config(&a).unwrap();
        assert_eq!(cfg.codec, CodecKind::Bwt);
        assert_eq!(cfg.chunk_bytes, 256 * 1024);
        assert_eq!(cfg.linearization, Linearization::Row);
        assert!(!cfg.isobar.enabled);
        assert!(matches!(
            cfg.index_policy,
            IndexPolicy::Reuse { correlation_threshold } if (correlation_threshold - 0.9).abs() < 1e-12
        ));
    }

    #[test]
    fn build_config_defaults_when_no_flags() {
        let cfg = build_config(&args(&["compress", "in", "out"])).unwrap();
        assert_eq!(cfg, PrimacyConfig::default());
    }

    #[test]
    fn build_config_rejects_unknown_codec() {
        let r = build_config(&args(&["compress", "in", "out", "--codec", "lz4"]));
        assert!(r.is_err());
    }

    #[test]
    fn threads_zero_auto_detects() {
        // 0 must become the machine's parallelism (>= 1), never 0.
        let auto = resolve_threads(0);
        assert!(auto >= 1);
        let expected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(auto, expected);
        // Explicit requests pass through untouched.
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert_eq!(resolve_threads(64), 64);
    }

    #[test]
    fn setup_trace_is_off_without_flag() {
        assert_eq!(setup_trace(&args(&["compress", "in", "out"])), Ok(false));
        assert!(!trace::enabled());
    }
}
