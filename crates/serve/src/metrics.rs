//! Per-tenant accounting and server health counters.
//!
//! Two complementary sinks record every request:
//!
//! * this module's own registry — exact per-tenant byte/request/error
//!   counts plus process-wide health counters, snapshottable at any time
//!   (tests and the `primacy-serve` binary read it on shutdown);
//! * `primacy-trace` — aggregate counters (`serve.*`) and the log2
//!   latency/queue-depth histograms, merged per worker thread, for the same
//!   `--trace` tooling the pipeline uses. Trace names must be `'static`,
//!   so the *per-tenant* breakdown lives here, not there.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Byte/request/error accounting for one tenant.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests accepted into the queue for this tenant.
    pub requests: u64,
    /// Requests answered `Ok`.
    pub ok: u64,
    /// Requests answered with any error status (busy/timeout/bad/...).
    pub errors: u64,
    /// Payload bytes received from this tenant.
    pub bytes_in: u64,
    /// Payload bytes sent back to this tenant.
    pub bytes_out: u64,
}

/// Live server metrics. All counters are monotonic; relaxed ordering is
/// sufficient everywhere because readers only ever want totals, not
/// happens-before edges.
#[derive(Debug, Default)]
pub struct Metrics {
    tenants: Mutex<BTreeMap<u64, TenantCounters>>,
    /// Connections accepted.
    pub accepted_conns: AtomicU64,
    /// Connections fully closed.
    pub closed_conns: AtomicU64,
    /// Frames rejected with a typed protocol error.
    pub proto_errors: AtomicU64,
    /// Requests rejected with `Busy` backpressure.
    pub busy: AtomicU64,
    /// Requests cancelled after waiting past their deadline.
    pub timeouts: AtomicU64,
    /// Requests rejected because the server was draining.
    pub shedding: AtomicU64,
    /// Responses that could not be written back (peer gone or stalled).
    pub send_failures: AtomicU64,
    /// Connections cut for exceeding the read timeout (slow-loris guard).
    pub slow_closes: AtomicU64,
    /// Panics caught in connection handlers. Must stay 0.
    pub conn_panics: AtomicU64,
    /// Panics caught around codec execution in workers. Must stay 0.
    pub worker_panics: AtomicU64,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Add `delta` with relaxed ordering (all metrics are plain tallies).
pub(crate) fn bump(counter: &AtomicU64, delta: u64) {
    // ORDERING: monotonic counters read only as totals; no data is
    // published through them.
    counter.fetch_add(delta, Ordering::Relaxed);
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account an admitted request's input size to its tenant.
    pub fn tenant_request(&self, tenant: u64, bytes_in: u64) {
        let mut map = lock_recover(&self.tenants);
        let c = map.entry(tenant).or_default();
        c.requests = c.requests.saturating_add(1);
        c.bytes_in = c.bytes_in.saturating_add(bytes_in);
    }

    /// Account a completed request's outcome to its tenant.
    pub fn tenant_done(&self, tenant: u64, ok: bool, bytes_out: u64) {
        let mut map = lock_recover(&self.tenants);
        let c = map.entry(tenant).or_default();
        if ok {
            c.ok = c.ok.saturating_add(1);
        } else {
            c.errors = c.errors.saturating_add(1);
        }
        c.bytes_out = c.bytes_out.saturating_add(bytes_out);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // ORDERING: relaxed loads of monotonic tallies; see `bump`.
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            tenants: lock_recover(&self.tenants).clone(),
            accepted_conns: load(&self.accepted_conns),
            closed_conns: load(&self.closed_conns),
            proto_errors: load(&self.proto_errors),
            busy: load(&self.busy),
            timeouts: load(&self.timeouts),
            shedding: load(&self.shedding),
            send_failures: load(&self.send_failures),
            slow_closes: load(&self.slow_closes),
            conn_panics: load(&self.conn_panics),
            worker_panics: load(&self.worker_panics),
        }
    }
}

/// Frozen copy of [`Metrics`] returned by [`Metrics::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Per-tenant accounting, keyed by tenant id.
    pub tenants: BTreeMap<u64, TenantCounters>,
    /// See [`Metrics::accepted_conns`].
    pub accepted_conns: u64,
    /// See [`Metrics::closed_conns`].
    pub closed_conns: u64,
    /// See [`Metrics::proto_errors`].
    pub proto_errors: u64,
    /// See [`Metrics::busy`].
    pub busy: u64,
    /// See [`Metrics::timeouts`].
    pub timeouts: u64,
    /// See [`Metrics::shedding`].
    pub shedding: u64,
    /// See [`Metrics::send_failures`].
    pub send_failures: u64,
    /// See [`Metrics::slow_closes`].
    pub slow_closes: u64,
    /// See [`Metrics::conn_panics`].
    pub conn_panics: u64,
    /// See [`Metrics::worker_panics`].
    pub worker_panics: u64,
}

impl MetricsSnapshot {
    /// Total `Ok` responses across tenants.
    pub fn total_ok(&self) -> u64 {
        self.tenants.values().map(|c| c.ok).sum()
    }

    /// Total requests admitted across tenants.
    pub fn total_requests(&self) -> u64 {
        self.tenants.values().map(|c| c.requests).sum()
    }

    /// Panics observed anywhere in the server. The fault-injection suite
    /// asserts this stays 0 under every assault.
    pub fn total_panics(&self) -> u64 {
        self.conn_panics.saturating_add(self.worker_panics)
    }

    /// Render a small human-readable table (used by the server binary on
    /// shutdown).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "conns accepted/closed: {}/{}  proto_errors: {}  busy: {}  timeouts: {}  \
             shedding: {}  send_failures: {}  slow_closes: {}  panics: {}",
            self.accepted_conns,
            self.closed_conns,
            self.proto_errors,
            self.busy,
            self.timeouts,
            self.shedding,
            self.send_failures,
            self.slow_closes,
            self.total_panics(),
        );
        let _ = writeln!(
            s,
            "{:>12} {:>10} {:>10} {:>10} {:>14} {:>14}",
            "tenant", "requests", "ok", "errors", "bytes_in", "bytes_out"
        );
        for (tenant, c) in &self.tenants {
            let _ = writeln!(
                s,
                "{tenant:>12} {:>10} {:>10} {:>10} {:>14} {:>14}",
                c.requests, c.ok, c.errors, c.bytes_in, c.bytes_out
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_accounting_accumulates() {
        let m = Metrics::new();
        m.tenant_request(7, 100);
        m.tenant_request(7, 50);
        m.tenant_request(9, 10);
        m.tenant_done(7, true, 40);
        m.tenant_done(7, false, 0);
        m.tenant_done(9, true, 5);
        let snap = m.snapshot();
        assert_eq!(
            snap.tenants[&7],
            TenantCounters {
                requests: 2,
                ok: 1,
                errors: 1,
                bytes_in: 150,
                bytes_out: 40,
            }
        );
        assert_eq!(snap.tenants[&9].ok, 1);
        assert_eq!(snap.total_requests(), 3);
        assert_eq!(snap.total_ok(), 2);
        assert_eq!(snap.total_panics(), 0);
    }

    #[test]
    fn health_counters_bump() {
        let m = Metrics::new();
        bump(&m.busy, 3);
        bump(&m.conn_panics, 1);
        let snap = m.snapshot();
        assert_eq!(snap.busy, 3);
        assert_eq!(snap.total_panics(), 1);
        // Render never panics and mentions the numbers.
        let table = snap.render();
        assert!(table.contains("busy: 3"));
    }
}
