//! The multi-tenant compression server.
//!
//! Thread architecture (DESIGN.md "Serving"):
//!
//! * one **acceptor** thread owns the listener and spawns a connection
//!   thread per client;
//! * one **connection** thread per client reads frames, answers protocol
//!   errors and `Ping` inline, and admits real work into the bounded job
//!   queue — when the queue is full the client gets an immediate
//!   [`Status::Busy`] instead of unbounded buffering;
//! * a fixed pool of **worker** threads, each owning one
//!   [`CodecScratch`] (so steady-state deflate encode stays
//!   allocation-free, the property PR 5 built) plus one instance of every
//!   codec, pops jobs, enforces the per-request queue deadline, runs the
//!   codec under `catch_unwind`, and writes the response back through the
//!   connection's serialized write handle.
//!
//! Graceful shutdown ([`Server::shutdown`]) drains: the queue closes (new
//! work is answered [`Status::ShuttingDown`]), workers finish every job
//! already admitted — no admitted request ever loses its response — and
//! only then are lingering connections cut.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use primacy_codecs::{Codec, CodecKind, CodecScratch};
use primacy_core::config::resolve_threads;
use primacy_core::{PrimacyCompressor, PrimacyConfig, PrimacyError};
use primacy_trace as trace;

use crate::metrics::{bump, Metrics, MetricsSnapshot};
use crate::protocol::{
    self, max_response_body, FrameError, Op, ProtoError, Request, Response, ServeCodec, Status,
    DEFAULT_MAX_FRAME,
};
use crate::queue::{Bounded, PushError};

/// Server configuration. `Default` is tuned for tests and small
/// deployments; the `primacy-serve` binary exposes every field.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; `0` auto-detects via
    /// [`primacy_core::config::resolve_threads`] (1-core machines get 1).
    pub workers: usize,
    /// Bounded job-queue depth; pushes beyond it answer [`Status::Busy`].
    pub queue_depth: usize,
    /// Queue-wait deadline: a request still queued after this long is
    /// cancelled with [`Status::Timeout`] instead of burning a worker.
    pub request_timeout: Duration,
    /// Per-read socket timeout — the slow-loris guard. A client that
    /// dribbles a frame slower than this is disconnected.
    pub read_timeout: Duration,
    /// Per-write socket timeout — a stalled reader cannot wedge a worker.
    pub write_timeout: Duration,
    /// Cap on a request frame body (header + payload).
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            request_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: DEFAULT_MAX_FRAME,
        }
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Write half of one client connection, shared between the connection
/// thread (inline error/ping replies) and whichever worker answers each
/// queued request. The mutex serializes whole frames so pipelined
/// responses never interleave.
struct Conn {
    id: u64,
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Encode and write one response frame. Returns whether the write
    /// succeeded; failures are tallied, not propagated — the client is
    /// simply gone.
    fn send(&self, metrics: &Metrics, resp: &Response) -> bool {
        let frame = match resp.encode_frame() {
            Ok(f) => f,
            Err(_) => {
                bump(&metrics.send_failures, 1);
                return false;
            }
        };
        let mut w = lock_recover(&self.writer);
        match w.write_all(&frame) {
            Ok(()) => true,
            Err(_) => {
                bump(&metrics.send_failures, 1);
                false
            }
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    conn: Arc<Conn>,
    enqueued: Instant,
    deadline: Instant,
}

struct Shared {
    config: ServeConfig,
    queue: Bounded<Job>,
    metrics: Metrics,
    draining: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_conn_id: AtomicU64,
}

/// A running compression server. Construct with [`Server::start`]; stop
/// with [`Server::shutdown`] (dropping the handle also shuts down).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start accepting. Worker threads and the acceptor are
    /// running when this returns.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let worker_count = resolve_threads(config.workers);
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_depth),
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            config,
        });

        let mut workers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }

        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::spawn(move || acceptor_loop(&listener, &shared, &conn_handles))
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            conn_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, close the queue, let workers
    /// drain every admitted job (every admitted request gets its
    /// response), then cut remaining connections and join every thread.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_impl()
    }

    fn shutdown_impl(&mut self) -> MetricsSnapshot {
        // Idempotent: a second call (e.g. Drop after shutdown) finds the
        // acceptor handle already taken and every collection empty.
        self.shared.draining.store(true, Ordering::Release);
        self.shared.queue.close();
        if let Some(acceptor) = self.acceptor.take() {
            // Unblock the blocking accept with a throwaway connection; the
            // acceptor observes `draining` and exits.
            let _ = TcpStream::connect(self.local_addr);
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Every queued job is now answered. Cut connections still open
        // (idle keep-alives, mid-read clients) and join their threads.
        {
            let conns = lock_recover(&self.shared.conns);
            for conn in conns.values() {
                let writer = lock_recover(&conn.writer);
                let _ = writer.shutdown(Shutdown::Both);
            }
        }
        let handles: Vec<JoinHandle<()>> = lock_recover(&self.conn_handles).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.shared.metrics.snapshot()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_impl();
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.draining.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Acquire) {
            // The wakeup connection from shutdown (or a late client); the
            // dropped stream closes it immediately.
            return;
        }
        bump(&shared.metrics.accepted_conns, 1);
        trace::counter("serve.conn", 1);
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let _ = stream.set_nodelay(true);

        // ORDERING: a ticket counter handing out unique connection ids; no
        // data is published through it.
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let writer = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        };
        let conn = Arc::new(Conn {
            id: conn_id,
            writer: Mutex::new(writer),
        });
        lock_recover(&shared.conns).insert(conn_id, Arc::clone(&conn));

        let handle = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || connection_entry(&shared, stream, &conn))
        };
        let mut handles = lock_recover(conn_handles);
        // Reap finished connection threads so a long-lived server does not
        // accumulate one stale handle per past connection.
        handles.retain(|h| !h.is_finished());
        handles.push(handle);
    }
}

/// Connection-thread entry point: runs the read loop under `catch_unwind`
/// so a bug in request handling can never take the process down, then
/// unregisters the connection.
fn connection_entry(shared: &Arc<Shared>, stream: TcpStream, conn: &Arc<Conn>) {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        handle_connection(shared, stream, conn);
    }));
    if outcome.is_err() {
        bump(&shared.metrics.conn_panics, 1);
    }
    lock_recover(&shared.conns).remove(&conn.id);
    bump(&shared.metrics.closed_conns, 1);
    // Merge this thread's trace records (connection counters) promptly.
    trace::flush_thread();
}

/// A response frame carrying an error status and a short diagnostic.
fn error_response(status: Status, req: Option<&Request>, detail: &str) -> Response {
    Response {
        status,
        op_echo: req.map(|r| r.op.to_byte()).unwrap_or(0),
        codec_echo: req.map(|r| r.codec.to_byte()).unwrap_or(0),
        request_id: req.map(|r| r.request_id).unwrap_or(0),
        tenant: req.map(|r| r.tenant).unwrap_or(0),
        payload: detail.as_bytes().to_vec(),
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, conn: &Arc<Conn>) {
    loop {
        match protocol::read_frame(&mut stream, shared.config.max_frame_bytes) {
            Ok(None) => return, // clean close at a frame boundary
            Ok(Some(body)) => match Request::decode(&body) {
                Ok(request) => {
                    if !dispatch(shared, conn, request) {
                        return;
                    }
                }
                Err(e) => {
                    // The frame was complete, so framing is intact — answer
                    // the typed error, then close: a peer that cannot form
                    // a header will not form the next frame either.
                    bump(&shared.metrics.proto_errors, 1);
                    trace::counter("serve.proto_error", 1);
                    conn.send(
                        &shared.metrics,
                        &error_response(Status::BadRequest, None, &e.to_string()),
                    );
                    return;
                }
            },
            Err(FrameError::Proto(e)) => {
                // Framing itself is broken (forged length, truncation):
                // answer once, then close — nothing after this byte
                // position can be trusted.
                bump(&shared.metrics.proto_errors, 1);
                trace::counter("serve.proto_error", 1);
                let status = match e {
                    ProtoError::FrameTooLarge { .. } => Status::TooLarge,
                    _ => Status::BadRequest,
                };
                conn.send(
                    &shared.metrics,
                    &error_response(status, None, &e.to_string()),
                );
                return;
            }
            Err(FrameError::Io(e)) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    // Read timeout: the slow-loris guard fired.
                    bump(&shared.metrics.slow_closes, 1);
                    trace::counter("serve.slow_close", 1);
                }
                return;
            }
        }
    }
}

/// Route one decoded request. Returns whether the connection should stay
/// open.
fn dispatch(shared: &Arc<Shared>, conn: &Arc<Conn>, request: Request) -> bool {
    trace::counter("serve.request", 1);
    if request.op == Op::Ping {
        // Health checks bypass the queue: answer inline, echoing the
        // payload so clients can verify liveness end to end.
        let resp = Response {
            status: Status::Ok,
            op_echo: request.op.to_byte(),
            codec_echo: request.codec.to_byte(),
            request_id: request.request_id,
            tenant: request.tenant,
            payload: request.payload,
        };
        return conn.send(&shared.metrics, &resp);
    }

    shared
        .metrics
        .tenant_request(request.tenant, request.payload.len() as u64);
    trace::counter("serve.bytes_in", request.payload.len() as u64);

    let now = Instant::now();
    let deadline = now
        .checked_add(shared.config.request_timeout)
        .unwrap_or(now);
    let job = Job {
        request,
        conn: Arc::clone(conn),
        enqueued: now,
        deadline,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            trace::observe("serve.queue_depth", depth as u64);
            true
        }
        Err(PushError::Full(job)) => {
            bump(&shared.metrics.busy, 1);
            trace::counter("serve.busy", 1);
            shared.metrics.tenant_done(job.request.tenant, false, 0);
            job.conn.send(
                &shared.metrics,
                &error_response(Status::Busy, Some(&job.request), "queue full"),
            )
        }
        Err(PushError::Closed(job)) => {
            bump(&shared.metrics.shedding, 1);
            trace::counter("serve.shed", 1);
            shared.metrics.tenant_done(job.request.tenant, false, 0);
            job.conn.send(
                &shared.metrics,
                &error_response(Status::ShuttingDown, Some(&job.request), "draining"),
            )
        }
    }
}

/// Map a codec selector to the worker's codec instance.
fn codec_for(codecs: &[Box<dyn Codec>], selector: ServeCodec) -> Option<&dyn Codec> {
    let index = match selector {
        ServeCodec::Zlib => 0usize,
        ServeCodec::Lzr => 1,
        ServeCodec::Bwt => 2,
        ServeCodec::Fpc => 3,
        ServeCodec::Fpz => 4,
        ServeCodec::Primacy => return None,
    };
    codecs.get(index).map(AsRef::as_ref)
}

fn map_primacy_error(e: &PrimacyError) -> Status {
    match e {
        PrimacyError::InvalidInput(_) | PrimacyError::InvalidConfig(_) => Status::BadRequest,
        _ => Status::CodecFailed,
    }
}

/// Run one request's codec work. Pure with respect to the server: all
/// I/O and accounting stay with the caller.
fn execute(
    request: &Request,
    scratch: &mut CodecScratch,
    codecs: &[Box<dyn Codec>],
    compressor: &PrimacyCompressor,
) -> Result<Vec<u8>, (Status, String)> {
    match (request.op, request.codec) {
        (Op::Ping, _) => Ok(request.payload.clone()),
        (Op::Compress, ServeCodec::Primacy) => compressor
            .compress_bytes(&request.payload)
            .map_err(|e| (map_primacy_error(&e), e.to_string())),
        (Op::Decompress, ServeCodec::Primacy) => compressor
            .decompress_bytes(&request.payload)
            .map_err(|e| (map_primacy_error(&e), e.to_string())),
        (op, selector) => {
            let Some(codec) = codec_for(codecs, selector) else {
                return Err((Status::Internal, "codec table hole".to_string()));
            };
            let result = match op {
                Op::Compress => codec.compress_with(&request.payload, scratch),
                _ => codec.decompress_with(&request.payload, scratch),
            };
            result.map_err(|e| (Status::CodecFailed, e.to_string()))
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // One trace scope per worker lifetime: aggregates merge on exit.
    let _trace_scope = trace::thread_scope();
    // One scratch per worker — the allocation-reuse contract from PR 5 —
    // plus one instance of every codec, built once.
    let mut scratch = CodecScratch::new();
    let codecs: Vec<Box<dyn Codec>> = CodecKind::ALL.iter().map(|k| k.build()).collect();
    let compressor = PrimacyCompressor::new(PrimacyConfig::default());
    let response_cap = max_response_body(shared.config.max_frame_bytes);

    while let Some(job) = shared.queue.pop() {
        let waited = job.enqueued.elapsed();
        trace::observe(
            "serve.queue_wait_us",
            u64::try_from(waited.as_micros()).unwrap_or(u64::MAX),
        );
        let tenant = job.request.tenant;
        if Instant::now() >= job.deadline {
            // Cancelled while queued: answer without doing the work.
            bump(&shared.metrics.timeouts, 1);
            trace::counter("serve.timeout", 1);
            shared.metrics.tenant_done(tenant, false, 0);
            job.conn.send(
                &shared.metrics,
                &error_response(Status::Timeout, Some(&job.request), "queue deadline"),
            );
            continue;
        }

        let started = Instant::now();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            execute(&job.request, &mut scratch, &codecs, &compressor)
        }));
        let outcome = match outcome {
            Ok(result) => result,
            Err(_) => {
                bump(&shared.metrics.worker_panics, 1);
                // Scratch state after an unwind is suspect; start fresh.
                scratch = CodecScratch::new();
                Err((Status::Internal, "worker panicked".to_string()))
            }
        };
        trace::observe(
            "serve.latency_us",
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        );

        match outcome {
            Ok(bytes) if bytes.len() > response_cap => {
                trace::counter("serve.err", 1);
                shared.metrics.tenant_done(tenant, false, 0);
                job.conn.send(
                    &shared.metrics,
                    &error_response(
                        Status::TooLarge,
                        Some(&job.request),
                        "result exceeds the response cap",
                    ),
                );
            }
            Ok(bytes) => {
                trace::counter("serve.ok", 1);
                trace::counter("serve.bytes_out", bytes.len() as u64);
                shared.metrics.tenant_done(tenant, true, bytes.len() as u64);
                job.conn.send(
                    &shared.metrics,
                    &Response {
                        status: Status::Ok,
                        op_echo: job.request.op.to_byte(),
                        codec_echo: job.request.codec.to_byte(),
                        request_id: job.request.request_id,
                        tenant,
                        payload: bytes,
                    },
                );
            }
            Err((status, detail)) => {
                trace::counter("serve.err", 1);
                shared.metrics.tenant_done(tenant, false, 0);
                job.conn.send(
                    &shared.metrics,
                    &error_response(status, Some(&job.request), &detail),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_sane() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.workers, 0, "default auto-detects");
        assert!(cfg.queue_depth >= 1);
        assert_eq!(cfg.max_frame_bytes, DEFAULT_MAX_FRAME);
    }

    #[test]
    fn error_response_echoes_request_fields() {
        let req = Request {
            op: Op::Compress,
            codec: ServeCodec::Fpz,
            request_id: 123,
            tenant: 9,
            payload: vec![1, 2, 3],
        };
        let resp = error_response(Status::Busy, Some(&req), "queue full");
        assert_eq!(resp.status, Status::Busy);
        assert_eq!(resp.request_id, 123);
        assert_eq!(resp.tenant, 9);
        assert_eq!(resp.op_echo, Op::Compress.to_byte());
        assert_eq!(resp.payload, b"queue full");
        // Without a parsed request everything echoes as zero.
        let resp = error_response(Status::BadRequest, None, "bad magic");
        assert_eq!(resp.request_id, 0);
        assert_eq!(resp.tenant, 0);
    }

    #[test]
    fn execute_covers_every_selector_roundtrip() {
        let mut scratch = CodecScratch::new();
        let codecs: Vec<Box<dyn Codec>> = CodecKind::ALL.iter().map(|k| k.build()).collect();
        let compressor = PrimacyCompressor::new(PrimacyConfig::default());
        // 8-byte aligned payload so Primacy accepts it too.
        let payload: Vec<u8> = (0..256u32).flat_map(|i| (i as f64).to_le_bytes()).collect();
        for selector in ServeCodec::ALL {
            let compress = Request {
                op: Op::Compress,
                codec: selector,
                request_id: 1,
                tenant: 1,
                payload: payload.clone(),
            };
            let compressed =
                execute(&compress, &mut scratch, &codecs, &compressor).expect("compress");
            let decompress = Request {
                op: Op::Decompress,
                codec: selector,
                request_id: 2,
                tenant: 1,
                payload: compressed,
            };
            let back =
                execute(&decompress, &mut scratch, &codecs, &compressor).expect("decompress");
            assert_eq!(back, payload, "selector {selector}");
        }
    }

    #[test]
    fn execute_maps_errors_to_statuses() {
        let mut scratch = CodecScratch::new();
        let codecs: Vec<Box<dyn Codec>> = CodecKind::ALL.iter().map(|k| k.build()).collect();
        let compressor = PrimacyCompressor::new(PrimacyConfig::default());
        // Unaligned payload into the PRIMACY pipeline: a client error.
        let req = Request {
            op: Op::Compress,
            codec: ServeCodec::Primacy,
            request_id: 1,
            tenant: 1,
            payload: vec![0u8; 13],
        };
        let (status, _) = execute(&req, &mut scratch, &codecs, &compressor).unwrap_err();
        assert_eq!(status, Status::BadRequest);
        // Garbage into a decompressor: a codec failure.
        let req = Request {
            op: Op::Decompress,
            codec: ServeCodec::Zlib,
            request_id: 1,
            tenant: 1,
            payload: vec![0xAA; 64],
        };
        let (status, _) = execute(&req, &mut scratch, &codecs, &compressor).unwrap_err();
        assert_eq!(status, Status::CodecFailed);
    }
}
