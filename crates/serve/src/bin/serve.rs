//! `primacy-serve` — run the multi-tenant compression service.
//!
//! ```text
//! primacy-serve [--addr HOST:PORT] [--workers N (0 = auto)]
//!               [--queue-depth N] [--request-timeout-ms N]
//!               [--read-timeout-ms N] [--max-frame-kb N]
//!               [--duration-ms N (0 = run until killed)]
//! ```
//!
//! On a fixed `--duration-ms` the server drains gracefully at the end and
//! prints the metrics table — which is how the test suite and CI use it;
//! with the default of 0 it serves until the process is killed.

use primacy_serve::{ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: primacy-serve [--addr HOST:PORT] [--workers N (0 = auto)] \
             [--queue-depth N] [--request-timeout-ms N] [--read-timeout-ms N] \
             [--max-frame-kb N] [--duration-ms N (0 = run until killed)]"
        );
        return ExitCode::from(2);
    }

    let mut config = ServeConfig {
        addr: parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:9209".to_string()),
        ..ServeConfig::default()
    };
    if let Some(workers) = parse_flag::<usize>(&args, "--workers") {
        config.workers = workers;
    }
    if let Some(depth) = parse_flag::<usize>(&args, "--queue-depth") {
        config.queue_depth = depth;
    }
    if let Some(ms) = parse_flag::<u64>(&args, "--request-timeout-ms") {
        config.request_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = parse_flag::<u64>(&args, "--read-timeout-ms") {
        config.read_timeout = Duration::from_millis(ms);
        config.write_timeout = Duration::from_millis(ms);
    }
    if let Some(kb) = parse_flag::<usize>(&args, "--max-frame-kb") {
        config.max_frame_bytes = kb.saturating_mul(1024);
    }
    let duration_ms = parse_flag::<u64>(&args, "--duration-ms").unwrap_or(0);

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("primacy-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("primacy-serve listening on {}", server.local_addr());

    if duration_ms == 0 {
        // Serve until the process is killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_millis(duration_ms));
    let snapshot = server.shutdown();
    print!("{}", snapshot.render());
    ExitCode::SUCCESS
}
