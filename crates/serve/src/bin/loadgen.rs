//! `primacy-loadgen` — load generator and correctness checker for
//! `primacy-serve`.
//!
//! ```text
//! primacy-loadgen --addr HOST:PORT [--connections N] [--requests N]
//!                 [--payload-kb N] [--codecs zlib,lzr,...] [--tenants N]
//!                 [--rate R (req/s per conn; 0 = closed loop)] [--burst N]
//!                 [--slow N] [--malformed N] [--seed S]
//! primacy-loadgen --smoke
//! ```
//!
//! Each connection runs on its own thread. In the default **closed loop**
//! every logical operation is a compress round-tripped through a server-side
//! decompress and compared byte-for-byte against the original. With
//! `--rate` the generator switches to an **open loop**: bursts of pipelined
//! compress requests with seeded-exponential inter-arrival gaps, verified by
//! decompressing locally. `Busy` answers are retried (and counted) — they
//! are backpressure, not failures. `--slow` and `--malformed` add
//! adversarial companions that dribble partial frames or send garbage while
//! the good traffic runs.
//!
//! Latency percentiles (p50/p99/p999 in µs), sustained MB/s, and every
//! failure counter land in `results/BENCH_serve.json` when CI sets
//! `PRIMACY_BENCH_JSON` (see `primacy_bench::Report`).
//!
//! `--smoke` is the CI gate: an in-process server, 100 good connections
//! plus slow and malformed companions, exiting non-zero on any dropped or
//! corrupted response or any caught panic.

use primacy_bench::Report;
use primacy_datagen::{DatasetId, Rng};
use primacy_serve::protocol::{Op, Request, ServeCodec, Status};
use primacy_serve::{MetricsSnapshot, ServeClient, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many times a `Busy` answer is retried before the op counts as
/// dropped. Generous: backpressure on a saturated box is expected.
const BUSY_RETRY_LIMIT: u32 = 5000;

#[derive(Clone)]
struct LoadConfig {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    payload_kb: usize,
    codecs: Vec<ServeCodec>,
    tenants: u64,
    rate: f64,
    burst: usize,
    slow: usize,
    malformed: usize,
    seed: u64,
    smoke: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: None,
            connections: 8,
            requests: 32,
            payload_kb: 64,
            codecs: vec![
                ServeCodec::Zlib,
                ServeCodec::Lzr,
                ServeCodec::Fpc,
                ServeCodec::Fpz,
                ServeCodec::Primacy,
            ],
            tenants: 4,
            rate: 0.0,
            burst: 4,
            slow: 0,
            malformed: 0,
            seed: 0x51_0AD,
            smoke: false,
        }
    }
}

/// Per-connection tallies, merged after the run.
#[derive(Debug, Default)]
struct ConnStats {
    ok: u64,
    busy_retries: u64,
    errors: u64,
    dropped: u64,
    corrupted: u64,
    bytes_in: u64,
    bytes_out: u64,
    latencies_us: Vec<u64>,
}

impl ConnStats {
    fn merge(&mut self, other: ConnStats) {
        self.ok += other.ok;
        self.busy_retries += other.busy_retries;
        self.errors += other.errors;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.latencies_us.extend(other.latencies_us);
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn parse_config(args: &[String]) -> Result<LoadConfig, String> {
    let mut cfg = LoadConfig {
        smoke: args.iter().any(|a| a == "--smoke"),
        addr: parse_flag(args, "--addr"),
        ..LoadConfig::default()
    };
    if cfg.smoke {
        // The CI gate: fixed shape, in-process server (unless --addr points
        // elsewhere), small payloads so a 1-core runner finishes quickly.
        cfg.connections = 100;
        cfg.requests = 16;
        cfg.payload_kb = 2;
        cfg.codecs = vec![ServeCodec::Zlib, ServeCodec::Lzr, ServeCodec::Fpc];
        cfg.tenants = 8;
        cfg.slow = 2;
        cfg.malformed = 2;
    }
    if let Some(v) = parse_flag(args, "--connections") {
        cfg.connections = v;
    }
    if let Some(v) = parse_flag(args, "--requests") {
        cfg.requests = v;
    }
    if let Some(v) = parse_flag(args, "--payload-kb") {
        cfg.payload_kb = v;
    }
    if let Some(v) = parse_flag(args, "--tenants") {
        cfg.tenants = v;
    }
    if let Some(v) = parse_flag(args, "--rate") {
        cfg.rate = v;
    }
    if let Some(v) = parse_flag(args, "--burst") {
        cfg.burst = v;
    }
    if let Some(v) = parse_flag(args, "--slow") {
        cfg.slow = v;
    }
    if let Some(v) = parse_flag(args, "--malformed") {
        cfg.malformed = v;
    }
    if let Some(v) = parse_flag(args, "--seed") {
        cfg.seed = v;
    }
    if let Some(names) = parse_flag::<String>(args, "--codecs") {
        let mut codecs = Vec::new();
        for name in names.split(',').filter(|s| !s.is_empty()) {
            match ServeCodec::from_name(name) {
                Some(c) => codecs.push(c),
                None => return Err(format!("unknown codec '{name}'")),
            }
        }
        if codecs.is_empty() {
            return Err("--codecs selected nothing".to_string());
        }
        cfg.codecs = codecs;
    }
    cfg.connections = cfg.connections.max(1);
    cfg.requests = cfg.requests.max(1);
    cfg.payload_kb = cfg.payload_kb.max(1);
    cfg.burst = cfg.burst.max(1);
    cfg.tenants = cfg.tenants.max(1);
    Ok(cfg)
}

/// Shared corpus the connections slice payloads from: deterministic
/// `datagen` doubles, so payloads are realistic floating-point data rather
/// than uniform noise (the service's actual workload).
fn build_corpus(payload_bytes: usize) -> Vec<u8> {
    // Four payload-widths of doubles so different connections slice
    // different windows; floor of 64 elements keeps tiny payloads working.
    let elems = (payload_bytes * 4 / 8).max(64);
    DatasetId::ALL[0].generate_bytes(elems)
}

/// The window of the corpus connection `conn` uses for request `index`:
/// 8-byte aligned (the PRIMACY pipeline requires it) and different per
/// request so response mix-ups cannot cancel out.
fn payload_for(corpus: &[u8], payload_bytes: usize, conn: usize, index: usize) -> Vec<u8> {
    let len = (payload_bytes.min(corpus.len()) & !7).max(8);
    let span = corpus.len().saturating_sub(len);
    let offset = if span == 0 {
        0
    } else {
        ((conn * 977 + index * 8123) % (span / 8 + 1)) * 8
    };
    let mut p = corpus[offset..offset + len].to_vec();
    // Stamp the identity into the first element so every payload is unique.
    if p.len() >= 8 {
        let tag = ((conn as u64) << 32) ^ index as u64;
        p[..8].copy_from_slice(&tag.to_le_bytes());
    }
    p
}

/// Send one request, retrying `Busy` (bounded), and return the `Ok`
/// response payload. Latency of the successful attempt is recorded.
fn op_with_retry(
    client: &mut ServeClient,
    stats: &mut ConnStats,
    op: Op,
    codec: ServeCodec,
    request_id: u64,
    tenant: u64,
    payload: &[u8],
) -> Option<Vec<u8>> {
    for _attempt in 0..BUSY_RETRY_LIMIT {
        let request = Request {
            op,
            codec,
            request_id,
            tenant,
            payload: payload.to_vec(),
        };
        let t0 = Instant::now();
        let response = match client.request(&request) {
            Ok(r) => r,
            Err(_) => {
                stats.dropped += 1;
                return None;
            }
        };
        if response.request_id != request_id {
            stats.corrupted += 1;
            return None;
        }
        match response.status {
            Status::Ok => {
                stats.ok += 1;
                stats.bytes_in += payload.len() as u64;
                stats.bytes_out += response.payload.len() as u64;
                stats
                    .latencies_us
                    .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                return Some(response.payload);
            }
            Status::Busy => {
                stats.busy_retries += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => {
                stats.errors += 1;
                return None;
            }
        }
    }
    stats.dropped += 1;
    None
}

/// Closed-loop worker: compress → server-side decompress → byte-compare,
/// `requests` times.
fn closed_loop_conn(addr: &str, cfg: &LoadConfig, corpus: &[u8], conn: usize) -> ConnStats {
    let mut stats = ConnStats::default();
    let mut client = match ServeClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            stats.dropped += cfg.requests as u64;
            return stats;
        }
    };
    let _ = client.set_timeouts(Some(Duration::from_secs(120)));
    let payload_bytes = cfg.payload_kb * 1024;
    let tenant = conn as u64 % cfg.tenants + 1;
    for index in 0..cfg.requests {
        let payload = payload_for(corpus, payload_bytes, conn, index);
        let codec = cfg.codecs[(conn + index) % cfg.codecs.len()];
        let id = ((conn as u64) << 24) | (index as u64) << 1;
        let Some(compressed) = op_with_retry(
            &mut client,
            &mut stats,
            Op::Compress,
            codec,
            id,
            tenant,
            &payload,
        ) else {
            continue;
        };
        let Some(restored) = op_with_retry(
            &mut client,
            &mut stats,
            Op::Decompress,
            codec,
            id | 1,
            tenant,
            &compressed,
        ) else {
            continue;
        };
        if restored != payload {
            stats.corrupted += 1;
        }
    }
    stats
}

/// Open-loop worker: bursts of pipelined compress requests with
/// seeded-exponential inter-arrival gaps; responses matched by id and
/// verified by local decompression.
fn open_loop_conn(addr: &str, cfg: &LoadConfig, corpus: &[u8], conn: usize) -> ConnStats {
    let mut stats = ConnStats::default();
    let mut client = match ServeClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            stats.dropped += cfg.requests as u64;
            return stats;
        }
    };
    let _ = client.set_timeouts(Some(Duration::from_secs(120)));
    let mut rng = Rng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9));
    let payload_bytes = cfg.payload_kb * 1024;
    let tenant = conn as u64 % cfg.tenants + 1;
    let mut sent = 0usize;
    while sent < cfg.requests {
        let burst = cfg.burst.min(cfg.requests - sent);
        let mut requests = Vec::with_capacity(burst);
        for b in 0..burst {
            let index = sent + b;
            requests.push(Request {
                op: Op::Compress,
                codec: cfg.codecs[(conn + index) % cfg.codecs.len()],
                request_id: ((conn as u64) << 24) | index as u64,
                tenant,
                payload: payload_for(corpus, payload_bytes, conn, index),
            });
        }
        // Pipelined: write the whole burst, then collect the responses in
        // whatever order the workers finished them.
        let t0 = Instant::now();
        match client.request_burst(&requests) {
            Ok(responses) => {
                for request in &requests {
                    match responses
                        .iter()
                        .find(|r| r.request_id == request.request_id)
                    {
                        Some(r) if r.status == Status::Ok => {
                            stats.ok += 1;
                            stats.bytes_in += request.payload.len() as u64;
                            stats.bytes_out += r.payload.len() as u64;
                            stats
                                .latencies_us
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                            match verify_local(request.codec, &r.payload, &request.payload) {
                                Ok(true) => {}
                                Ok(false) | Err(()) => stats.corrupted += 1,
                            }
                        }
                        Some(r) if r.status == Status::Busy => stats.busy_retries += 1,
                        Some(_) => stats.errors += 1,
                        None => stats.dropped += 1,
                    }
                }
            }
            Err(_) => {
                stats.dropped += burst as u64;
                return stats;
            }
        }
        sent += burst;
        if cfg.rate > 0.0 {
            // Exponential inter-arrival around the requested per-connection
            // rate; the burst amortizes one gap over `burst` requests.
            let mean_s = burst as f64 / cfg.rate;
            let u = rng.gen_f64().max(1e-12);
            let gap = (-u.ln() * mean_s).clamp(0.0, 4.0 * mean_s);
            std::thread::sleep(Duration::from_secs_f64(gap));
        }
    }
    stats
}

/// Decompress `compressed` locally with the codec matching `selector` and
/// compare to `expected`.
fn verify_local(selector: ServeCodec, compressed: &[u8], expected: &[u8]) -> Result<bool, ()> {
    use primacy_codecs::CodecKind;
    let kind = match selector {
        ServeCodec::Zlib => CodecKind::Zlib,
        ServeCodec::Lzr => CodecKind::Lzr,
        ServeCodec::Bwt => CodecKind::Bwt,
        ServeCodec::Fpc => CodecKind::Fpc,
        ServeCodec::Fpz => CodecKind::Fpz,
        ServeCodec::Primacy => {
            let c = primacy_core::PrimacyCompressor::new(primacy_core::PrimacyConfig::default());
            return c
                .decompress_bytes(compressed)
                .map(|back| back == expected)
                .map_err(|_| ());
        }
    };
    kind.build()
        .decompress(compressed)
        .map(|back| back == expected)
        .map_err(|_| ())
}

/// Slow-loris companion: dribbles a valid frame a few bytes at a time,
/// then abandons it mid-frame. Exercises the server's read-timeout path
/// without asserting on timing.
fn slow_client(addr: &str, seed: u64) {
    use std::io::Write as _;
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return;
    };
    let mut rng = Rng::seed_from_u64(seed);
    let frame = Request {
        op: Op::Compress,
        codec: ServeCodec::Zlib,
        request_id: 0x510,
        tenant: 0,
        payload: vec![0u8; 512],
    };
    let frame = match frame.encode_frame() {
        Ok(f) => f,
        Err(_) => return,
    };
    let dribble = (frame.len() / 4).max(1);
    for chunk in frame.chunks(dribble).take(2) {
        if stream.write_all(chunk).is_err() {
            return;
        }
        std::thread::sleep(Duration::from_millis(
            50 + rng.gen_range(0..100usize) as u64,
        ));
    }
    // Abandon the rest of the frame; the server should classify this as a
    // truncated frame or a timed-out read, never a panic.
}

/// Malformed companion: sends one of several classes of garbage and reads
/// whatever comes back (typed error or clean close both count as correct).
fn malformed_client(addr: &str, seed: u64) {
    use std::io::{Read as _, Write as _};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut rng = Rng::seed_from_u64(seed);
    let mut garbage = vec![0u8; 128];
    rng.fill_bytes(&mut garbage);
    let attack = rng.gen_range(0..3usize);
    let bytes: Vec<u8> = match attack {
        // Forged enormous length prefix.
        0 => u32::MAX.to_le_bytes().to_vec(),
        // Valid length prefix, garbage body.
        1 => {
            let mut v = (garbage.len() as u32).to_le_bytes().to_vec();
            v.extend_from_slice(&garbage);
            v
        }
        // Raw garbage, no framing at all.
        _ => garbage,
    };
    let _ = stream.write_all(&bytes);
    let mut sink = [0u8; 256];
    // Drain the typed error response (or observe the close).
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn run(cfg: &LoadConfig) -> Result<(), String> {
    // In-process server when no --addr was given (the smoke gate and local
    // experimentation); otherwise target the remote instance.
    let in_process = if cfg.addr.is_none() {
        Some(
            Server::start(ServeConfig {
                queue_depth: 256,
                request_timeout: Duration::from_secs(60),
                read_timeout: Duration::from_secs(30),
                write_timeout: Duration::from_secs(30),
                ..ServeConfig::default()
            })
            .map_err(|e| format!("starting in-process server: {e}"))?,
        )
    } else {
        None
    };
    let addr: String = match (&cfg.addr, &in_process) {
        (Some(a), _) => a.clone(),
        (None, server) => server
            .as_ref()
            .map(|s| s.local_addr().to_string())
            .unwrap_or_default(),
    };

    let corpus = Arc::new(build_corpus(cfg.payload_kb * 1024));
    let started = Instant::now();
    let mut total = ConnStats::default();

    std::thread::scope(|scope| {
        let mut good = Vec::with_capacity(cfg.connections);
        for conn in 0..cfg.connections {
            let corpus = Arc::clone(&corpus);
            let addr = addr.as_str();
            good.push(scope.spawn(move || {
                if cfg.rate > 0.0 {
                    open_loop_conn(addr, cfg, &corpus, conn)
                } else {
                    closed_loop_conn(addr, cfg, &corpus, conn)
                }
            }));
        }
        let mut adversaries = Vec::with_capacity(cfg.slow + cfg.malformed);
        for i in 0..cfg.slow {
            let addr = addr.as_str();
            let seed = cfg.seed ^ (0x510 + i as u64);
            adversaries.push(scope.spawn(move || slow_client(addr, seed)));
        }
        for i in 0..cfg.malformed {
            let addr = addr.as_str();
            let seed = cfg.seed ^ (0xBAD + i as u64);
            adversaries.push(scope.spawn(move || malformed_client(addr, seed)));
        }
        for h in good {
            if let Ok(stats) = h.join() {
                total.merge(stats);
            } else {
                total.dropped += cfg.requests as u64;
            }
        }
        for h in adversaries {
            let _ = h.join();
        }
    });
    let wall = started.elapsed();

    let server_snapshot: Option<MetricsSnapshot> = in_process.map(Server::shutdown);

    total.latencies_us.sort_unstable();
    let p50 = percentile(&total.latencies_us, 0.50);
    let p99 = percentile(&total.latencies_us, 0.99);
    let p999 = percentile(&total.latencies_us, 0.999);
    let moved = (total.bytes_in + total.bytes_out) as f64;
    let mbps = if wall.as_secs_f64() > 0.0 {
        moved / 1e6 / wall.as_secs_f64()
    } else {
        0.0
    };

    println!(
        "conns {}  ops ok {}  busy-retries {}  errors {}  dropped {}  corrupted {}",
        cfg.connections, total.ok, total.busy_retries, total.errors, total.dropped, total.corrupted
    );
    println!(
        "latency p50 {p50} us  p99 {p99} us  p999 {p999} us  throughput {mbps:.2} MB/s  wall {:.2} s",
        wall.as_secs_f64()
    );
    if let Some(snap) = &server_snapshot {
        print!("{}", snap.render());
    }

    let mut report = Report::new("serve_loadgen");
    report.push("serve/connections", cfg.connections as f64);
    report.push("serve/ops_ok", total.ok as f64);
    report.push("serve/busy_retries", total.busy_retries as f64);
    report.push("serve/errors", total.errors as f64);
    report.push("serve/dropped", total.dropped as f64);
    report.push("serve/corrupted", total.corrupted as f64);
    report.push("serve/p50_us", p50 as f64);
    report.push("serve/p99_us", p99 as f64);
    report.push("serve/p999_us", p999 as f64);
    report.push("serve/throughput_mb_s", mbps);
    report.push("serve/wall_s", wall.as_secs_f64());
    if let Some(snap) = &server_snapshot {
        report.push("serve/server_busy", snap.busy as f64);
        report.push("serve/server_timeouts", snap.timeouts as f64);
        report.push("serve/server_proto_errors", snap.proto_errors as f64);
        report.push("serve/server_panics", snap.total_panics() as f64);
    }
    report.finish();

    if cfg.smoke {
        let expected_ok = (cfg.connections * cfg.requests * 2) as u64;
        let mut failures = Vec::new();
        if total.dropped != 0 {
            failures.push(format!("{} dropped responses", total.dropped));
        }
        if total.corrupted != 0 {
            failures.push(format!("{} corrupted responses", total.corrupted));
        }
        if total.errors != 0 {
            failures.push(format!("{} error responses", total.errors));
        }
        if total.ok != expected_ok {
            failures.push(format!("expected {expected_ok} ok ops, saw {}", total.ok));
        }
        if let Some(snap) = &server_snapshot {
            if snap.total_panics() != 0 {
                failures.push(format!(
                    "{} caught panics in the server",
                    snap.total_panics()
                ));
            }
        }
        if !failures.is_empty() {
            return Err(format!("smoke gate failed: {}", failures.join("; ")));
        }
        println!(
            "smoke gate passed: {expected_ok} ops across {} connections",
            cfg.connections
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: primacy-loadgen [--addr HOST:PORT] [--connections N] [--requests N] \
             [--payload-kb N] [--codecs zlib,lzr,bwt,fpc,fpz,primacy] [--tenants N] \
             [--rate R (0 = closed loop)] [--burst N] [--slow N] [--malformed N] \
             [--seed S] [--smoke]"
        );
        return ExitCode::from(2);
    }
    let cfg = match parse_config(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("primacy-loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("primacy-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
