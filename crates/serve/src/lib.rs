//! `primacy-serve`: a multi-tenant TCP compression service over the
//! PRIMACY codecs.
//!
//! The crate turns the library pipeline into a network service with the
//! operational properties ROADMAP.md's "production-scale" north star asks
//! for:
//!
//! * a **length-prefixed binary protocol** ([`protocol`]) whose decoder is
//!   a designated untrusted-input surface — checked reads only, every
//!   attacker-controlled length capped before allocation;
//! * a **bounded worker pool** ([`server`]) with one codec scratch per
//!   worker, explicit [`protocol::Status::Busy`] backpressure instead of
//!   unbounded buffering, per-request queue deadlines, and graceful
//!   shutdown that drains every admitted request;
//! * **per-tenant accounting** ([`metrics`]) plus `serve.*` trace counters
//!   and latency histograms via `primacy-trace`;
//! * a blocking **client** ([`client`]) used by the integration tests and
//!   the `primacy-loadgen` load generator.
//!
//! Quick start (see README for the binaries):
//!
//! ```
//! use primacy_serve::{Server, ServeConfig, ServeClient, ServeCodec, client::expect_ok};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//! let data = vec![42u8; 4096];
//! let resp = client.compress(ServeCodec::Zlib, 1, 7, data.clone()).unwrap();
//! let compressed = expect_ok(resp).unwrap();
//! let resp = client.decompress(ServeCodec::Zlib, 2, 7, compressed).unwrap();
//! assert_eq!(expect_ok(resp).unwrap(), data);
//! server.shutdown();
//! ```

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{ClientError, ServeClient};
pub use metrics::{Metrics, MetricsSnapshot, TenantCounters};
pub use protocol::{Op, ProtoError, Request, Response, ServeCodec, Status};
pub use server::{ServeConfig, Server};
