//! Blocking client for the PRIMACY compression service.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks the frame
//! protocol from [`crate::protocol`]. Requests are answered in order, so a
//! single client is strictly request/response; open more clients for
//! concurrency (the load generator opens hundreds).

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, FrameError, Op, ProtoError, Request, Response, ServeCodec, Status,
    DEFAULT_MAX_FRAME,
};

/// Client-side failure talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(std::io::Error),
    /// The server sent bytes that violate the protocol.
    Proto(ProtoError),
    /// The server closed the connection before answering.
    ServerClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            FrameError::Proto(p) => ClientError::Proto(p),
        }
    }
}

/// One blocking connection to a `primacy-serve` instance.
pub struct ServeClient {
    stream: TcpStream,
    /// Cap on response bodies accepted from the server.
    max_frame: usize,
}

impl ServeClient {
    /// Connect to `addr` with the default response-size cap.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient {
            stream,
            max_frame: crate::protocol::max_response_body(DEFAULT_MAX_FRAME),
        })
    }

    /// Override the cap on response bodies this client will accept.
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = max_frame;
    }

    /// Set read/write timeouts on the underlying socket.
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = request.encode_frame().map_err(ClientError::Proto)?;
        self.stream.write_all(&frame)?;
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(body) => Response::decode(&body).map_err(ClientError::Proto),
            None => Err(ClientError::ServerClosed),
        }
    }

    /// Pipelined burst: write every request back-to-back, then read exactly
    /// one response per request. Responses arrive in whatever order the
    /// server's workers finished them — match them to requests by
    /// `request_id`.
    pub fn request_burst(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut frames = Vec::new();
        for request in requests {
            frames.extend_from_slice(&request.encode_frame().map_err(ClientError::Proto)?);
        }
        self.stream.write_all(&frames)?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            match read_frame(&mut self.stream, self.max_frame)? {
                Some(body) => responses.push(Response::decode(&body).map_err(ClientError::Proto)?),
                None => return Err(ClientError::ServerClosed),
            }
        }
        Ok(responses)
    }

    /// Health check: sends `Ping`, expects the payload echoed back.
    pub fn ping(&mut self, request_id: u64, tenant: u64) -> Result<Response, ClientError> {
        self.request(&Request {
            op: Op::Ping,
            codec: ServeCodec::Zlib,
            request_id,
            tenant,
            payload: Vec::new(),
        })
    }

    /// Compress `payload` with `codec`; returns the full response (check
    /// `status` — `Busy`/`Timeout` are expected under load).
    pub fn compress(
        &mut self,
        codec: ServeCodec,
        request_id: u64,
        tenant: u64,
        payload: Vec<u8>,
    ) -> Result<Response, ClientError> {
        self.request(&Request {
            op: Op::Compress,
            codec,
            request_id,
            tenant,
            payload,
        })
    }

    /// Decompress `payload` with `codec`.
    pub fn decompress(
        &mut self,
        codec: ServeCodec,
        request_id: u64,
        tenant: u64,
        payload: Vec<u8>,
    ) -> Result<Response, ClientError> {
        self.request(&Request {
            op: Op::Decompress,
            codec,
            request_id,
            tenant,
            payload,
        })
    }
}

/// `Ok` payload or a typed error for any other status — the convenience
/// most callers want after [`ServeClient::request`].
pub fn expect_ok(response: Response) -> Result<Vec<u8>, ClientError> {
    if response.status == Status::Ok {
        Ok(response.payload)
    } else {
        // Non-Ok statuses carry a UTF-8 diagnostic; surface it as an
        // io::Error so callers get one error channel.
        let detail = String::from_utf8_lossy(&response.payload);
        Err(ClientError::Io(std::io::Error::other(format!(
            "server answered {}: {detail}",
            response.status
        ))))
    }
}
