//! Wire protocol of the PRIMACY compression service.
//!
//! Everything a client sends is a **frame**: a 4-byte little-endian body
//! length followed by the body. Request and response bodies share one
//! 24-byte fixed header followed by a variable payload:
//!
//! ```text
//! frame:    u32 LE body_len        body_len in [24, cap]
//! body:
//!   [0..2]   magic  "Ps"
//!   [2]      protocol version      (currently 1)
//!   [3]      opcode (request) / status (response)
//!   [4]      codec selector (request) / opcode echo (response)
//!   [5]      flags (request, must be 0) / codec echo (response)
//!   [6..8]   reserved, must be 0
//!   [8..16]  request id, u64 LE    (echoed verbatim in the response)
//!   [16..24] tenant id, u64 LE     (echoed verbatim in the response)
//!   [24..]   payload
//! ```
//!
//! The request payload is the bytes to (de)compress; the response payload is
//! the result on [`Status::Ok`] and a short UTF-8 diagnostic on every error
//! status. The frame length prefix is the *only* length field — the payload
//! runs to the end of the body, so a forged inner length cannot disagree
//! with the framing.
//!
//! This module is a designated untrusted-input surface (`primacy-lint`
//! `UNTRUSTED_MODULES`): every byte here may come from a hostile socket, so
//! decoding uses checked reads only and every length is capped before it
//! sizes an allocation. The wire layout is pinned byte-exactly by the golden
//! vectors in `tests/golden/serve_*.hex` (`tests/golden_format.rs`).

use std::io::Read;

/// First two body bytes of every frame, both directions.
pub const MAGIC: [u8; 2] = [b'P', b's'];
/// Current protocol version byte.
pub const VERSION: u8 = 1;
/// Fixed body-header size (everything before the payload).
pub const HEADER_BYTES: usize = 24;
/// Size of the frame length prefix.
pub const LEN_BYTES: usize = 4;

/// Default cap on a request body (header + payload): 8 MiB.
///
/// This is the service's decompression-bomb stance at the edge: a length
/// prefix claiming more than the cap is rejected *before* any allocation,
/// with [`ProtoError::FrameTooLarge`], and the connection keeps its framing
/// (the oversized frame is never read off the wire).
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Response bodies may be modestly larger than request bodies: compressing
/// incompressible data expands it slightly (stored DEFLATE blocks cost
/// ~5 bytes per 64 KiB plus container overhead). One eighth plus a constant
/// covers every in-tree codec's worst case.
pub fn max_response_body(max_request_body: usize) -> usize {
    max_request_body
        .saturating_add(max_request_body / 8)
        .saturating_add(256)
}

/// Operation requested by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compress the payload with the selected codec.
    Compress,
    /// Decompress the payload with the selected codec.
    Decompress,
    /// Health check: empty payload, echoed back immediately (never queued).
    Ping,
}

impl Op {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Op::Compress => 1,
            Op::Decompress => 2,
            Op::Ping => 3,
        }
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Result<Op, ProtoError> {
        match b {
            1 => Ok(Op::Compress),
            2 => Ok(Op::Decompress),
            3 => Ok(Op::Ping),
            other => Err(ProtoError::BadOpcode(other)),
        }
    }
}

/// Codec selector carried in every request: the five paper codecs plus the
/// full PRIMACY pipeline (preconditioner + default backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeCodec {
    /// DEFLATE/zlib-class backend.
    Zlib,
    /// LZO-class fast byte LZ.
    Lzr,
    /// bzip2-class BWT codec.
    Bwt,
    /// FPC floating-point predictor.
    Fpc,
    /// fpzip-class range-coded predictor.
    Fpz,
    /// The full PRIMACY pipeline (requires 8-byte-aligned payloads).
    Primacy,
}

impl ServeCodec {
    /// Every selector, in wire-byte order.
    pub const ALL: [ServeCodec; 6] = [
        ServeCodec::Zlib,
        ServeCodec::Lzr,
        ServeCodec::Bwt,
        ServeCodec::Fpc,
        ServeCodec::Fpz,
        ServeCodec::Primacy,
    ];

    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            ServeCodec::Zlib => 0,
            ServeCodec::Lzr => 1,
            ServeCodec::Bwt => 2,
            ServeCodec::Fpc => 3,
            ServeCodec::Fpz => 4,
            ServeCodec::Primacy => 5,
        }
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Result<ServeCodec, ProtoError> {
        match b {
            0 => Ok(ServeCodec::Zlib),
            1 => Ok(ServeCodec::Lzr),
            2 => Ok(ServeCodec::Bwt),
            3 => Ok(ServeCodec::Fpc),
            4 => Ok(ServeCodec::Fpz),
            5 => Ok(ServeCodec::Primacy),
            other => Err(ProtoError::BadCodec(other)),
        }
    }

    /// Stable name used in reports and the load generator's CLI.
    pub fn name(self) -> &'static str {
        match self {
            ServeCodec::Zlib => "zlib",
            ServeCodec::Lzr => "lzr",
            ServeCodec::Bwt => "bwt",
            ServeCodec::Fpc => "fpc",
            ServeCodec::Fpz => "fpz",
            ServeCodec::Primacy => "primacy",
        }
    }

    /// Look a selector up by its [`ServeCodec::name`].
    pub fn from_name(name: &str) -> Option<ServeCodec> {
        ServeCodec::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for ServeCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; the payload is the operation's result.
    Ok,
    /// The bounded work queue was full — explicit backpressure. Retry later.
    Busy,
    /// The request waited in the queue past its deadline and was cancelled.
    Timeout,
    /// The request was structurally invalid (bad header fields or payload
    /// constraints, e.g. a PRIMACY payload not 8-byte aligned).
    BadRequest,
    /// The codec rejected the payload (corrupt compressed input, …).
    CodecFailed,
    /// The request or its result exceeded a configured size cap.
    TooLarge,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// A worker failed internally; the request had no effect.
    Internal,
}

impl Status {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Busy => 1,
            Status::Timeout => 2,
            Status::BadRequest => 3,
            Status::CodecFailed => 4,
            Status::TooLarge => 5,
            Status::ShuttingDown => 6,
            Status::Internal => 7,
        }
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Result<Status, ProtoError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Busy),
            2 => Ok(Status::Timeout),
            3 => Ok(Status::BadRequest),
            4 => Ok(Status::CodecFailed),
            5 => Ok(Status::TooLarge),
            6 => Ok(Status::ShuttingDown),
            7 => Ok(Status::Internal),
            other => Err(ProtoError::BadStatus(other)),
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::Busy => "busy",
            Status::Timeout => "timeout",
            Status::BadRequest => "bad-request",
            Status::CodecFailed => "codec-failed",
            Status::TooLarge => "too-large",
            Status::ShuttingDown => "shutting-down",
            Status::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Typed protocol violation. Every decode failure is one of these — a
/// malformed frame can never panic the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the structure it claims to hold.
    Truncated,
    /// The length prefix exceeds the configured cap.
    FrameTooLarge {
        /// Body length the prefix claimed.
        claimed: u64,
        /// Configured cap it exceeded.
        cap: u64,
    },
    /// The body does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown codec-selector byte.
    BadCodec(u8),
    /// Unknown status byte.
    BadStatus(u8),
    /// A reserved header field was not zero.
    NonZeroReserved,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::FrameTooLarge { claimed, cap } => {
                write!(
                    f,
                    "frame body of {claimed} bytes exceeds the {cap}-byte cap"
                )
            }
            ProtoError::BadMagic => write!(f, "bad frame magic"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {b}"),
            ProtoError::BadCodec(b) => write!(f, "unknown codec selector {b}"),
            ProtoError::BadStatus(b) => write!(f, "unknown status {b}"),
            ProtoError::NonZeroReserved => write!(f, "reserved header bytes are not zero"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Requested operation.
    pub op: Op,
    /// Codec selector.
    pub codec: ServeCodec,
    /// Client-chosen id, echoed verbatim in the response.
    pub request_id: u64,
    /// Tenant the request is accounted to.
    pub tenant: u64,
    /// Bytes to operate on.
    pub payload: Vec<u8>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome.
    pub status: Status,
    /// Opcode byte of the request this answers (0 when unparseable).
    pub op_echo: u8,
    /// Codec byte of the request this answers (0 when unparseable).
    pub codec_echo: u8,
    /// Request id echoed from the request (0 when unparseable).
    pub request_id: u64,
    /// Tenant id echoed from the request (0 when unparseable).
    pub tenant: u64,
    /// Result bytes on [`Status::Ok`], UTF-8 diagnostic otherwise.
    pub payload: Vec<u8>,
}

/// Read a fixed-size array at `at`, or `None` past the end — the panic-free
/// slice-to-array read used by every field decoder here.
fn read_array<const N: usize>(buf: &[u8], at: usize) -> Option<[u8; N]> {
    let end = at.checked_add(N)?;
    let s = buf.get(at..end)?;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Some(a)
}

/// Validate the shared 24-byte body header; returns the two direction-
/// specific bytes at offsets 3 and 4, the byte at 5, and the two u64 ids.
fn decode_header(body: &[u8]) -> Result<(u8, u8, u8, u64, u64), ProtoError> {
    let magic: [u8; 2] = read_array(body, 0).ok_or(ProtoError::Truncated)?;
    if magic != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = *body.get(2).ok_or(ProtoError::Truncated)?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let b3 = *body.get(3).ok_or(ProtoError::Truncated)?;
    let b4 = *body.get(4).ok_or(ProtoError::Truncated)?;
    let b5 = *body.get(5).ok_or(ProtoError::Truncated)?;
    let reserved: [u8; 2] = read_array(body, 6).ok_or(ProtoError::Truncated)?;
    if reserved != [0, 0] {
        return Err(ProtoError::NonZeroReserved);
    }
    let request_id = u64::from_le_bytes(read_array(body, 8).ok_or(ProtoError::Truncated)?);
    let tenant = u64::from_le_bytes(read_array(body, 16).ok_or(ProtoError::Truncated)?);
    Ok((b3, b4, b5, request_id, tenant))
}

fn encode_header(out: &mut Vec<u8>, b3: u8, b4: u8, b5: u8, request_id: u64, tenant: u64) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(b3);
    out.push(b4);
    out.push(b5);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&tenant.to_le_bytes());
}

/// Prepend the length prefix to a finished body. Fails (rather than
/// truncating) if the body cannot be described by a u32 prefix.
fn frame_body(body: Vec<u8>) -> Result<Vec<u8>, ProtoError> {
    let len = u32::try_from(body.len()).map_err(|_| ProtoError::FrameTooLarge {
        claimed: body.len() as u64,
        cap: u32::MAX as u64,
    })?;
    let mut out = Vec::with_capacity(body.len().saturating_add(LEN_BYTES));
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

impl Request {
    /// Encode this request as one complete frame (length prefix included).
    pub fn encode_frame(&self) -> Result<Vec<u8>, ProtoError> {
        let mut body = Vec::with_capacity(HEADER_BYTES.saturating_add(self.payload.len()));
        encode_header(
            &mut body,
            self.op.to_byte(),
            self.codec.to_byte(),
            0,
            self.request_id,
            self.tenant,
        );
        body.extend_from_slice(&self.payload);
        frame_body(body)
    }

    /// Decode a request from a complete frame body (no length prefix).
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let (op_byte, codec_byte, flags, request_id, tenant) = decode_header(body)?;
        if flags != 0 {
            return Err(ProtoError::NonZeroReserved);
        }
        let payload = body.get(HEADER_BYTES..).ok_or(ProtoError::Truncated)?;
        Ok(Request {
            op: Op::from_byte(op_byte)?,
            codec: ServeCodec::from_byte(codec_byte)?,
            request_id,
            tenant,
            payload: payload.to_vec(),
        })
    }
}

impl Response {
    /// Encode this response as one complete frame (length prefix included).
    pub fn encode_frame(&self) -> Result<Vec<u8>, ProtoError> {
        let mut body = Vec::with_capacity(HEADER_BYTES.saturating_add(self.payload.len()));
        encode_header(
            &mut body,
            self.status.to_byte(),
            self.op_echo,
            self.codec_echo,
            self.request_id,
            self.tenant,
        );
        body.extend_from_slice(&self.payload);
        frame_body(body)
    }

    /// Decode a response from a complete frame body (no length prefix).
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let (status_byte, op_echo, codec_echo, request_id, tenant) = decode_header(body)?;
        let payload = body.get(HEADER_BYTES..).ok_or(ProtoError::Truncated)?;
        Ok(Response {
            status: Status::from_byte(status_byte)?,
            op_echo,
            codec_echo,
            request_id,
            tenant,
            payload: payload.to_vec(),
        })
    }
}

/// Split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only part of a frame (read more
/// and retry), or `Ok(Some((body, consumed)))` with the complete frame body
/// and the total bytes consumed (prefix + body). The length prefix is
/// validated against `max_body` *before* the body is touched.
pub fn split_frame(buf: &[u8], max_body: usize) -> Result<Option<(&[u8], usize)>, ProtoError> {
    let Some(prefix) = read_array::<4>(buf, 0) else {
        return Ok(None);
    };
    let claimed = u32::from_le_bytes(prefix) as usize;
    if claimed > max_body {
        return Err(ProtoError::FrameTooLarge {
            claimed: claimed as u64,
            cap: max_body as u64,
        });
    }
    if claimed < HEADER_BYTES {
        return Err(ProtoError::Truncated);
    }
    let end = LEN_BYTES.saturating_add(claimed);
    match buf.get(LEN_BYTES..end) {
        Some(body) => Ok(Some((body, end))),
        None => Ok(None),
    }
}

/// Error reading a frame off a socket: transport failure or protocol
/// violation.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying read failed (includes timeouts and resets).
    Io(std::io::Error),
    /// The bytes read violate the protocol.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<ProtoError> for FrameError {
    fn from(e: ProtoError) -> Self {
        FrameError::Proto(e)
    }
}

/// Read one complete frame body from `r`.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer closed between frames). A length prefix above `max_body` fails with
/// [`ProtoError::FrameTooLarge`] before any body allocation — the cap, not
/// the attacker, bounds memory. EOF inside a frame is
/// [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_body: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; LEN_BYTES];
    let mut got = 0usize;
    while got < LEN_BYTES {
        let n = match r.read(prefix.get_mut(got..).unwrap_or(&mut [])) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        };
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(ProtoError::Truncated.into());
        }
        got = got.saturating_add(n);
    }
    let claimed = u32::from_le_bytes(prefix) as usize;
    if claimed > max_body {
        return Err(ProtoError::FrameTooLarge {
            claimed: claimed as u64,
            cap: max_body as u64,
        }
        .into());
    }
    if claimed < HEADER_BYTES {
        return Err(ProtoError::Truncated.into());
    }
    // `claimed` is bounded by `max_body` above, so this allocation is capped
    // by configuration, not by the wire.
    let mut body = vec![0u8; claimed];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Some(body)),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(ProtoError::Truncated.into())
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            op: Op::Compress,
            codec: ServeCodec::Zlib,
            request_id: 0x0102_0304_0506_0708,
            tenant: 42,
            payload: b"abcdefgh".to_vec(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        let frame = req.encode_frame().unwrap();
        let (body, consumed) = split_frame(&frame, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(consumed, frame.len());
        assert_eq!(Request::decode(body).unwrap(), req);
    }

    #[test]
    fn response_roundtrip_all_statuses() {
        for status in [
            Status::Ok,
            Status::Busy,
            Status::Timeout,
            Status::BadRequest,
            Status::CodecFailed,
            Status::TooLarge,
            Status::ShuttingDown,
            Status::Internal,
        ] {
            let resp = Response {
                status,
                op_echo: Op::Decompress.to_byte(),
                codec_echo: ServeCodec::Bwt.to_byte(),
                request_id: 7,
                tenant: 9,
                payload: vec![1, 2, 3],
            };
            let frame = resp.encode_frame().unwrap();
            let (body, _) = split_frame(&frame, DEFAULT_MAX_FRAME).unwrap().unwrap();
            assert_eq!(Response::decode(body).unwrap(), resp);
            assert_eq!(Status::from_byte(status.to_byte()).unwrap(), status);
        }
    }

    #[test]
    fn byte_mappings_roundtrip() {
        for op in [Op::Compress, Op::Decompress, Op::Ping] {
            assert_eq!(Op::from_byte(op.to_byte()).unwrap(), op);
        }
        for codec in ServeCodec::ALL {
            assert_eq!(ServeCodec::from_byte(codec.to_byte()).unwrap(), codec);
            assert_eq!(ServeCodec::from_name(codec.name()), Some(codec));
        }
        assert!(Op::from_byte(0).is_err());
        assert!(Op::from_byte(4).is_err());
        assert!(ServeCodec::from_byte(6).is_err());
        assert!(Status::from_byte(8).is_err());
        assert_eq!(ServeCodec::from_name("nope"), None);
    }

    #[test]
    fn split_frame_handles_partials_and_caps() {
        let frame = sample_request().encode_frame().unwrap();
        // Every strict prefix is "incomplete", never an error.
        for keep in 0..frame.len() {
            assert_eq!(
                split_frame(&frame[..keep], DEFAULT_MAX_FRAME).unwrap(),
                None
            );
        }
        // A tiny cap rejects the frame by its prefix alone.
        let err = split_frame(&frame, 8).unwrap_err();
        assert!(matches!(err, ProtoError::FrameTooLarge { .. }));
        // A body too small to hold the header is truncated.
        let mut small = Vec::new();
        small.extend_from_slice(&4u32.to_le_bytes());
        small.extend_from_slice(&[0; 4]);
        assert_eq!(split_frame(&small, 64), Err(ProtoError::Truncated));
    }

    #[test]
    fn decode_rejects_each_header_violation() {
        let frame = sample_request().encode_frame().unwrap();
        let body = frame[LEN_BYTES..].to_vec();

        let mut bad = body.clone();
        bad[0] = b'X';
        assert_eq!(Request::decode(&bad), Err(ProtoError::BadMagic));

        let mut bad = body.clone();
        bad[2] = 9;
        assert_eq!(Request::decode(&bad), Err(ProtoError::BadVersion(9)));

        let mut bad = body.clone();
        bad[3] = 200;
        assert_eq!(Request::decode(&bad), Err(ProtoError::BadOpcode(200)));

        let mut bad = body.clone();
        bad[4] = 77;
        assert_eq!(Request::decode(&bad), Err(ProtoError::BadCodec(77)));

        let mut bad = body.clone();
        bad[5] = 1;
        assert_eq!(Request::decode(&bad), Err(ProtoError::NonZeroReserved));

        let mut bad = body.clone();
        bad[6] = 1;
        assert_eq!(Request::decode(&bad), Err(ProtoError::NonZeroReserved));

        assert_eq!(Request::decode(&body[..10]), Err(ProtoError::Truncated));
    }

    #[test]
    fn read_frame_handles_eof_and_caps() {
        let frame = sample_request().encode_frame().unwrap();
        // Clean EOF at a frame boundary.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let mut cursor = &two[..];
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_some());
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_some());
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());

        // EOF mid-prefix and mid-body.
        for cut in [1, 3, LEN_BYTES + 2, frame.len() - 1] {
            let mut cursor = &frame[..cut];
            let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(err, FrameError::Proto(ProtoError::Truncated)),
                "cut {cut}: {err}"
            );
        }

        // A forged huge prefix fails before reading (or allocating) a body.
        let mut forged = Vec::new();
        forged.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &forged[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Proto(ProtoError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn response_cap_exceeds_request_cap() {
        assert!(max_response_body(DEFAULT_MAX_FRAME) > DEFAULT_MAX_FRAME);
        // And it never overflows.
        assert!(max_response_body(usize::MAX) >= usize::MAX - 1);
    }
}
