//! Bounded MPMC job queue with explicit backpressure.
//!
//! The server's admission policy (DESIGN.md "Serving") is *reject, don't
//! buffer*: when the queue is full, [`Bounded::try_push`] hands the item
//! straight back so the connection thread can answer `Busy` — there is no
//! blocking push and therefore no unbounded memory growth and no hidden
//! queueing latency. Consumers block in [`Bounded::pop`] on a condvar.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` rather than a lock-free ring:
//! every queue operation is adjacent to a multi-kilobyte compression job,
//! so the lock is noise, and the condvar gives exact wakeups for shutdown
//! draining (`close` wakes every consumer; each drains remaining items and
//! then observes the closed flag).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Outcome of a rejected [`Bounded::try_push`], returning ownership of the
/// item so the caller can respond to it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — answer with backpressure.
    Full(T),
    /// The queue is closed for shutdown — no new work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

/// Recover the guard from a poisoned lock: queue state is a `VecDeque` plus
/// a flag, both valid after any panic unwound past a holder.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` items (`cap` is clamped to ≥ 1 so a
    /// misconfigured zero depth cannot deadlock every producer).
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current depth (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// Whether the queue is currently empty (racy; for metrics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item` if there is room. On success returns the queue depth
    /// *after* the push (for depth metrics); on rejection returns the item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means shutdown: the queue is closed and every
    /// admitted item has been handed to some consumer — the drain guarantee
    /// graceful shutdown relies on.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what was admitted and then receive `None`.
    pub fn close(&self) {
        let mut inner = lock_recover(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_with_item() {
        let q = Bounded::new(2);
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        match q.try_push(12) {
            Err(PushError::Full(v)) => assert_eq!(v, 12),
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.try_push(12).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(v)) => assert_eq!(v, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Admitted items still drain in order, then None forever.
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        // One item fits, so a single-producer single-consumer pair cannot
        // deadlock even under the misconfiguration.
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || q.pop()));
        }
        // Give the consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PER_PRODUCER: usize = 200;
        let q = Arc::new(Bounded::<usize>::new(8));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut item = p * PER_PRODUCER + i;
                    // Spin on Full: producers in this test emulate retrying
                    // clients.
                    loop {
                        match q.try_push(item) {
                            Ok(_) => break,
                            Err(PushError::Full(v)) => {
                                item = v;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..4 * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }
}
