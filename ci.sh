#!/usr/bin/env bash
# Offline CI gate for the PRIMACY suite.
#
# The workspace is hermetic: every dependency is an in-tree `primacy-*`
# path crate (see DESIGN.md "Dependency policy"), so the whole gate runs
# with `--offline` — no registry, no network, an empty cargo cache is fine.
# `.github/workflows/ci.yml` runs exactly this script; run it locally
# before pushing.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --workspace --offline
run cargo test -q --workspace --offline

echo "==> ci.sh: all gates green"
