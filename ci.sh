#!/usr/bin/env bash
# Offline CI gate for the PRIMACY suite.
#
# The workspace is hermetic: every dependency is an in-tree `primacy-*`
# path crate (see DESIGN.md "Dependency policy"), so the whole gate runs
# with `--offline` — no registry, no network, an empty cargo cache is fine.
# `.github/workflows/ci.yml` runs this script one stage per job; run it
# locally with no argument to get the full gate before pushing.
#
# Usage: ./ci.sh [lint|build-test|conformance|bench|archive-io|serve|all]
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"

# Echo the command, run it, and report its wall time so slow steps are
# attributable from the CI log alone.
run() {
    echo "==> $*"
    local t0 t1
    t0=$SECONDS
    "$@"
    t1=$SECONDS
    echo "==> done in $((t1 - t0))s: $*"
}

lint() {
    run cargo fmt --check
    run cargo clippy --workspace --all-targets --offline -- -D warnings
    # Static analysis gate (DESIGN.md "Static analysis"): the whole-workspace
    # interprocedural pass — call graph, function summaries, cross-function
    # taint — plus the per-file rules. Non-zero exit on any rule violation
    # and on any *regression* against the checked-in diagnostics baseline
    # (a new finding, suppression, or allow directive under any per-file
    # per-rule key fails, rendered as a per-rule delta table; improvements
    # pass). Refresh intentionally with:
    #   primacy-lint . --write-baseline lint-baseline.json
    #
    # Build first so the timed run below measures analysis, not rustc; the
    # analyzer has a 10s whole-workspace runtime budget so the gate stays
    # cheap enough to run on every push.
    run cargo build --release --offline -p primacy-lint
    local lint_t0=$SECONDS
    run ./target/release/primacy-lint . --baseline lint-baseline.json
    local lint_dt=$((SECONDS - lint_t0))
    echo "==> primacy-lint whole-workspace runtime: ${lint_dt}s (budget: <10s)"
    if ((lint_dt >= 10)); then
        echo "==> primacy-lint blew its 10s runtime budget (${lint_dt}s)" >&2
        exit 1
    fi
}

build_test() {
    run cargo build --release --workspace --offline
    # The workspace test pass runs every suite — unit, adversarial-decode
    # corpus, golden vectors, parallel determinism — at default test
    # parallelism, so none of those need a separate default-parallelism
    # invocation here.
    run cargo test -q --workspace --offline
    # Second test pass with overflow checks compiled in
    # (profile.release-checked): arithmetic wraps that plain release would
    # mask abort the suite here.
    run cargo test -q --workspace --offline --profile release-checked
}

conformance() {
    # Format-conformance gate, *serialized*: golden vectors and parallel
    # determinism with RUST_TEST_THREADS=1. The build-test stage already
    # runs these suites at default parallelism; this run only adds the
    # single-threaded schedule, pinning that thread scheduling never changes
    # container bytes. (Earlier revisions also re-ran them at default
    # parallelism and re-ran adversarial_decode by name — both were exact
    # duplicates of workspace-test coverage and are deliberately gone.)
    run env RUST_TEST_THREADS=1 cargo test -q --offline \
        --test golden_format --test parallel_determinism
}

bench() {
    # Throughput benchmark in smoke mode: validates the BENCH_throughput.json
    # schema, asserts every per-stage/per-codec rate is a finite positive
    # number, and gates per-corpus compression ratios against the checked-in
    # results/ratio-baseline.json (±0.5%). Absolute MB/s figures are
    # report-only — CI machines vary — the full-size trajectory lives in
    # EXPERIMENTS.md. The smoke report JSON is kept for artifact upload.
    run env PRIMACY_BENCH_JSON=results/BENCH_throughput_smoke.json \
        cargo run --release --offline -p primacy-bench --bin throughput -- --smoke
}

archive_io() {
    # Overlapped-archive smoke gate: writes the two acceptance corpora
    # through both writers and asserts (a) overlapped archives are
    # byte-identical to bulk-synchronous ones at every thread count, (b) the
    # overlap counters are live, and (c) behind the modeled staging link the
    # overlapped writer beats bulk by ≥ 1.05× (the full-size ≥ 1.3× claim
    # lives in EXPERIMENTS.md / results/BENCH_archive_io.json, regenerated
    # with a plain `archive_io` run). Absolute MB/s stays report-only here.
    # Budget: must finish inside 60s even on a 1-core runner (measured ~3s
    # plus compile).
    run cargo build --release --offline -p primacy-bench
    local aio_t0=$SECONDS
    run env PRIMACY_BENCH_JSON=results/BENCH_archive_io_smoke.json \
        ./target/release/archive_io --smoke
    local aio_dt=$((SECONDS - aio_t0))
    echo "==> archive_io --smoke runtime: ${aio_dt}s (budget: <60s)"
    if ((aio_dt >= 60)); then
        echo "==> archive_io --smoke blew its 60s runtime budget (${aio_dt}s)" >&2
        exit 1
    fi
}

serve() {
    # Serving smoke gate: an in-process `primacy-serve` instance under
    # `primacy-loadgen --smoke` — 100 concurrent connections of mixed
    # compress/decompress traffic plus slow-loris and malformed companions.
    # The gate fails on any dropped, corrupted, or error response and on any
    # caught panic; latency percentiles and sustained MB/s land in
    # results/BENCH_serve.json for artifact upload. Budget: the smoke run
    # itself must finish inside 60s even on a 1-core runner (measured ~2s).
    run cargo build --release --offline -p primacy-serve
    local serve_t0=$SECONDS
    run env PRIMACY_BENCH_JSON=results/BENCH_serve.json \
        ./target/release/primacy-loadgen --smoke
    local serve_dt=$((SECONDS - serve_t0))
    echo "==> primacy-loadgen --smoke runtime: ${serve_dt}s (budget: <60s)"
    if ((serve_dt >= 60)); then
        echo "==> primacy-loadgen --smoke blew its 60s runtime budget (${serve_dt}s)" >&2
        exit 1
    fi
}

case "$stage" in
lint) lint ;;
build-test) build_test ;;
conformance) conformance ;;
bench) bench ;;
archive-io) archive_io ;;
serve) serve ;;
all)
    lint
    build_test
    conformance
    bench
    archive_io
    serve
    ;;
*)
    echo "usage: $0 [lint|build-test|conformance|bench|archive-io|serve|all]" >&2
    exit 2
    ;;
esac

echo "==> ci.sh: stage '$stage' green"
