#!/usr/bin/env bash
# Offline CI gate for the PRIMACY suite.
#
# The workspace is hermetic: every dependency is an in-tree `primacy-*`
# path crate (see DESIGN.md "Dependency policy"), so the whole gate runs
# with `--offline` — no registry, no network, an empty cargo cache is fine.
# `.github/workflows/ci.yml` runs exactly this script; run it locally
# before pushing.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --release --workspace --offline
# Static analysis gate (DESIGN.md "Static analysis"): non-zero exit on
# any rule violation — panic safety, untrusted-length taint, overflow,
# allocation sizing, SAFETY comments, pub docs — and on any *regression*
# against the checked-in diagnostics baseline: a new finding, a new
# suppression, or a new allow directive all fail; improvements pass.
# Refresh intentionally with: primacy-lint --write-baseline lint-baseline.json
run cargo run --release --offline -p primacy-lint -- --baseline lint-baseline.json
run cargo test -q --workspace --offline
# Second test pass with overflow checks compiled in (profile.release-checked):
# arithmetic wraps that plain release would mask abort the suite here.
run cargo test -q --workspace --offline --profile release-checked
# The adversarial-decode corpus is part of the workspace test run above;
# re-run it by name so a corpus failure is unmissable in the CI log.
run cargo test -q --offline --test adversarial_decode
# Format-conformance gate: golden vectors and parallel determinism, once
# serialized (RUST_TEST_THREADS=1) and once at default test parallelism —
# thread-scheduling effects must never change container bytes.
run env RUST_TEST_THREADS=1 cargo test -q --offline \
    --test golden_format --test parallel_determinism
run cargo test -q --offline --test golden_format --test parallel_determinism
# Throughput benchmark in smoke mode: validates the BENCH_throughput.json
# schema and asserts every per-stage/per-codec rate is a finite positive
# number. Absolute MB/s figures are report-only — CI machines vary — the
# full-size trajectory lives in EXPERIMENTS.md.
run cargo run --release --offline -p primacy-bench --bin throughput -- --smoke

echo "==> ci.sh: all gates green"
