//! WORM analysis workflow: write a large compressed archive once, then make
//! many small random reads — the usage pattern §IV-D calls out for reads,
//! served by the seekable archive format instead of front-to-back streams.
//!
//! ```sh
//! cargo run --release --example random_access_analysis
//! ```

use primacy_suite::core::{ArchiveReader, ArchiveWriter, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use std::time::Instant;

fn main() {
    // One simulation variable, 4M doubles (32 MB), archived with 3 MB chunks.
    let elements: usize = 1 << 22;
    let values = DatasetId::ObsTemp.generate(elements);

    let t0 = Instant::now();
    let mut writer =
        ArchiveWriter::new(Vec::new(), PrimacyConfig::default()).expect("valid config");
    writer.append_f64(&values).expect("aligned data");
    let archive = writer.finish().expect("archive finalizes");
    println!(
        "archived {} doubles: {} -> {} bytes (CR {:.3}) in {:.0} ms",
        elements,
        elements * 8,
        archive.len(),
        (elements * 8) as f64 / archive.len() as f64,
        t0.elapsed().as_secs_f64() * 1e3
    );

    let reader = ArchiveReader::open(&archive).expect("archive parses");
    println!(
        "{} chunks; directory enables direct access to any of them",
        reader.chunk_count()
    );

    // Analysis pass 1: sparse probes — e.g. a tracked feature's time series.
    let t0 = Instant::now();
    let mut checksum = 0.0f64;
    let probes = 200;
    for k in 0..probes {
        let pos = (k * 104_729) % (elements - 8); // prime stride
        let window = reader
            .read_elements_f64(pos as u64, 8)
            .expect("in-bounds read");
        checksum += window.iter().sum::<f64>();
        assert_eq!(window, &values[pos..pos + 8]);
    }
    let sparse = t0.elapsed();
    println!(
        "{probes} random 8-element probes in {:.0} ms ({:.2} ms/probe), checksum {checksum:.3}",
        sparse.as_secs_f64() * 1e3,
        sparse.as_secs_f64() * 1e3 / probes as f64
    );

    // Analysis pass 2: one contiguous subdomain (a tenth of the variable).
    let t0 = Instant::now();
    let start = elements as u64 / 2;
    let count = elements / 10;
    let slice = reader
        .read_elements_f64(start, count)
        .expect("in-bounds range");
    assert_eq!(slice, &values[start as usize..start as usize + count]);
    println!(
        "contiguous {}-element slice in {:.0} ms",
        count,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Contrast: a front-to-back stream would decode everything up to the
    // requested offset. Quantify what the directory saved.
    let t0 = Instant::now();
    let full = reader
        .read_elements_f64(0, elements)
        .expect("full readback");
    let full_time = t0.elapsed();
    assert_eq!(full.len(), elements);
    println!(
        "full decode for comparison: {:.0} ms — random probes touched {:.1}% of that per probe",
        full_time.as_secs_f64() * 1e3,
        sparse.as_secs_f64() / probes as f64 / full_time.as_secs_f64() * 100.0
    );
}
