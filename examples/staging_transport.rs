//! In-situ staging transport, for real: a compute process compresses
//! checkpoints with PRIMACY and ships them over a Unix socket to a staging
//! process, which verifies and "stores" them — the paper's deployment
//! (compression at compute nodes, data reduction on the wire, §II-A/§III-C)
//! exercised with two actual OS processes instead of a simulator.
//!
//! ```sh
//! cargo run --release --example staging_transport
//! ```

use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Instant;

/// Wire format: u64-le payload length, then the PRIMACY stream.
fn send_frame(sock: &mut UnixStream, payload: &[u8]) -> std::io::Result<()> {
    sock.write_all(&(payload.len() as u64).to_le_bytes())?;
    sock.write_all(payload)
}

fn recv_frame(sock: &mut UnixStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 8];
    if let Err(e) = sock.read_exact(&mut len) {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            return Ok(None); // peer closed: end of run
        }
        return Err(e);
    }
    let mut payload = vec![0u8; u64::from_le_bytes(len) as usize];
    sock.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn main() {
    let steps = 6usize;
    let elements = 1 << 19; // 4 MB of state per step
    let (compute_sock, staging_sock) = UnixStream::pair().expect("socketpair");

    // Staging process stand-in: a thread with its own socket end (the data
    // still crosses a real kernel socket buffer).
    let staging = std::thread::spawn(move || {
        let mut sock = staging_sock;
        let compressor = PrimacyCompressor::new(PrimacyConfig::default());
        let mut received = 0usize;
        let mut stored = 0usize;
        let mut checkpoints = 0usize;
        while let Some(frame) = recv_frame(&mut sock).expect("staging recv") {
            received += frame.len();
            // The staging side verifies integrity before committing to
            // "disk" (decompression walks every checksum).
            let plaintext = compressor
                .decompress_bytes(&frame)
                .expect("checkpoint arrived corrupt");
            stored += plaintext.len();
            checkpoints += 1;
        }
        (checkpoints, received, stored)
    });

    // Compute process: generate, compress in-situ, ship.
    let mut sock = compute_sock;
    let compressor = PrimacyCompressor::new(PrimacyConfig::default());
    let mut shipped = 0usize;
    let mut raw = 0usize;
    let t0 = Instant::now();
    for step in 0..steps {
        // A drifting field: regenerate with a step-dependent tail so every
        // checkpoint differs.
        let mut values = DatasetId::GtsChkpZeon.generate(elements);
        for (i, v) in values.iter_mut().enumerate() {
            *v += (step * elements + i) as f64 * 1e-12;
        }
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let compressed = compressor
            .compress_bytes_parallel(&bytes, 4)
            .expect("aligned state");
        raw += bytes.len();
        shipped += compressed.len();
        send_frame(&mut sock, &compressed).expect("compute send");
        println!(
            "step {step}: shipped {} -> {} bytes (CR {:.3})",
            bytes.len(),
            compressed.len(),
            bytes.len() as f64 / compressed.len() as f64
        );
    }
    drop(sock); // EOF tells staging the run is over
    let elapsed = t0.elapsed();

    let (checkpoints, received, stored) = staging.join().expect("staging thread");
    assert_eq!(checkpoints, steps);
    assert_eq!(received, shipped);
    assert_eq!(stored, raw);
    println!(
        "\n{} checkpoints: {:.1} MB raw -> {:.1} MB on the wire ({:.1}% bandwidth saved)",
        checkpoints,
        raw as f64 / 1e6,
        shipped as f64 / 1e6,
        (1.0 - shipped as f64 / raw as f64) * 100.0
    );
    println!(
        "end-to-end (generate+compress+ship+verify): {:.0} ms, {:.1} MB/s effective",
        elapsed.as_secs_f64() * 1e3,
        raw as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!("staging side verified every checkpoint's checksums before storing");
}
