//! Quickstart: compress a buffer of doubles with PRIMACY, inspect the
//! stats, and get the data back bit-for-bit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};

fn main() {
    // Some "hard-to-compress" scientific-looking data: a smooth signal with
    // full-precision noise. Standard compressors barely dent this.
    let values: Vec<f64> = (0..1_000_000)
        .map(|i| {
            let t = i as f64;
            let noise = {
                // Deterministic pseudo-noise in the mantissa.
                let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 33;
                x as f64 / u64::MAX as f64 * 1e-3
            };
            280.0 + 5.0 * (t * 0.0001).sin() + noise
        })
        .collect();

    // The default configuration is the paper's: 3 MB chunks, zlib backend,
    // frequency-ranked ID mapping over the 2 exponent bytes, column
    // linearization, ISOBAR partitioning of the 6 mantissa bytes.
    let compressor = PrimacyCompressor::new(PrimacyConfig::default());

    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let (compressed, stats) = compressor
        .compress_bytes_with_stats(&bytes)
        .expect("compression cannot fail on aligned input");

    println!("original:    {} bytes", stats.original_bytes);
    println!("compressed:  {} bytes", stats.compressed_bytes);
    println!("ratio:       {:.3}", stats.ratio());
    println!("throughput:  {:.1} MB/s", stats.throughput_mbps());
    println!(
        "chunks:      {} ({} carrying their own index)",
        stats.chunks, stats.own_index_chunks
    );
    println!(
        "ISOBAR sent  {:.0}% of mantissa bytes to the codec",
        stats.isobar_compressible_fraction * 100.0
    );

    // Lossless roundtrip.
    let restored = compressor
        .decompress_f64(&compressed)
        .expect("own stream must decompress");
    assert_eq!(restored.len(), values.len());
    assert!(restored
        .iter()
        .zip(&values)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("roundtrip:   bit-exact OK");
}
