//! Survey all 20 synthetic datasets with every codec backend and the full
//! PRIMACY pipeline — a compact version of the paper's Table III that also
//! exercises the bzip2-class, FPC and FPZ codecs the paper discusses.
//!
//! ```sh
//! cargo run --release --example dataset_survey [elements-per-dataset]
//! ```

use primacy_suite::codecs::CodecKind;
use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use std::time::Instant;

fn main() {
    let elements: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 18);

    let primacy = PrimacyCompressor::new(PrimacyConfig::default());
    println!(
        "{:<16} | {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} | best",
        "dataset", "primacy", "zlib", "lzr", "bwt", "fpc", "fpz"
    );

    let mut primacy_wall_secs = 0.0;
    let mut total_bytes = 0usize;
    for id in DatasetId::ALL {
        let bytes = id.generate_bytes(elements);
        total_bytes += bytes.len();

        let t0 = Instant::now();
        let p = primacy.compress_bytes(&bytes).expect("aligned input");
        primacy_wall_secs += t0.elapsed().as_secs_f64();
        assert_eq!(primacy.decompress_bytes(&p).expect("roundtrip"), bytes);
        let primacy_cr = bytes.len() as f64 / p.len() as f64;

        let mut crs: Vec<(String, f64)> = vec![("primacy".into(), primacy_cr)];
        print!("{:<16} | {:>8.3}", id.name(), primacy_cr);
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let c = codec.compress(&bytes).expect("compress");
            assert_eq!(codec.decompress(&c).expect("roundtrip"), bytes);
            let cr = bytes.len() as f64 / c.len() as f64;
            print!(" {cr:>8.3}");
            crs.push((kind.to_string(), cr));
        }
        let best = crs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        println!(" | {}", best.0);
    }
    println!(
        "\nPRIMACY compressed {:.0} MB at {:.1} MB/s end to end",
        total_bytes as f64 / 1e6,
        total_bytes as f64 / 1e6 / primacy_wall_secs
    );
    println!("(bwt usually wins raw ratio but at in-situ-hostile speed — the paper's");
    println!("argument for preconditioning a fast codec instead of using a strong one.)");
}
