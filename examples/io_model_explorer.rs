//! Explore the paper's §III performance model: for which cluster
//! configurations does compression pay off end to end?
//!
//! The paper closes by noting the model lets application developers predict
//! I/O performance on *target* systems without running there. This example
//! measures this machine's codec rates once, then uses `hpcsim::sweep` to
//! map the winner over (ρ, μw) and locate the disk-speed crossover where
//! compression stops paying.
//!
//! ```sh
//! cargo run --release --example io_model_explorer
//! ```

use primacy_suite::codecs::CodecKind;
use primacy_suite::core::PrimacyConfig;
use primacy_suite::datagen::DatasetId;
use primacy_suite::hpcsim::sweep::{crossover_mu, sweep_rho_mu, Strategy};
use primacy_suite::hpcsim::{measure_primacy, measure_vanilla};

fn main() {
    // Measure this machine's rates once, on a representative dataset.
    let data = DatasetId::FlashVelx.generate_bytes(1 << 19);
    let cfg = PrimacyConfig::default();
    let rates = measure_primacy(&cfg, &data).expect("measurement failed");
    let zlib = CodecKind::Zlib.build();
    let (z_sigma, z_cbps, _z_dbps) =
        measure_vanilla(zlib.as_ref(), &data).expect("measurement failed");

    println!("measured on this machine (flash_velx stand-in):");
    println!(
        "  PRIMACY: Tprec {:.0} MB/s, Tcomp {:.0} MB/s, effective CR {:.2}",
        rates.t_prec / 1e6,
        rates.t_comp / 1e6,
        rates.ratio
    );
    println!(
        "  zlib:    Tcomp {:.0} MB/s, CR {:.2}",
        z_cbps / 1e6,
        1.0 / z_sigma
    );

    let template = rates.to_model_inputs(Default::default(), 3.0 * 1024.0 * 1024.0, 2048.0);
    let rhos = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    let mus: Vec<f64> = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
        .iter()
        .map(|m| m * 1e6)
        .collect();
    let grid = sweep_rho_mu(&template, (z_sigma, z_cbps), &rhos, &mus);

    println!("\nwinner map over (rho, disk MB/s), theta = 1.2 GB/s, chunk = 3 MB:");
    print!("{:>6}", "rho\\mu");
    for mu in &mus {
        print!("{:>9}", mu / 1e6);
    }
    println!();
    for &rho in &rhos {
        print!("{rho:>6}");
        for &mu in &mus {
            let point = grid
                .iter()
                .find(|g| g.rho == rho && g.mu_write == mu)
                .expect("grid point");
            let label = match point.winner() {
                Strategy::Primacy => "prim",
                Strategy::Vanilla => "zlib",
                Strategy::Null => "null",
            };
            print!("{:>5}{:>+4.0}", label, point.best_gain() * 100.0);
        }
        println!();
    }

    println!("\ndisk-speed crossover (mu_w above which compression stops paying):");
    for rho in [2.0, 8.0, 32.0] {
        match crossover_mu(&template, rho, 10e9) {
            Some(mu) => println!("  rho {rho:>4}: {:.0} MB/s", mu / 1e6),
            None => println!("  rho {rho:>4}: never within 10 GB/s"),
        }
    }

    println!("\nreading: slow disks and high fan-in favour compression (disk seconds are");
    println!("worth more than CPU seconds); once the disk outruns the crossover, the null");
    println!("case wins and in-situ compression is pure overhead — exactly the regime");
    println!("analysis the paper's model is for.");
}
