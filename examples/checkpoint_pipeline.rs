//! Checkpoint/restart pipeline: the workload the paper's introduction
//! motivates. A simulated application periodically snapshots its state; we
//! compress each checkpoint in-situ with PRIMACY (in parallel across worker
//! threads, like compute nodes compressing their own data), "write" it to a
//! store, then restart from the latest checkpoint and verify bit-exactness.
//!
//! ```sh
//! cargo run --release --example checkpoint_pipeline
//! ```

use primacy_suite::core::{PrimacyCompressor, PrimacyConfig};
use primacy_suite::datagen::DatasetId;
use std::collections::BTreeMap;
use std::time::Instant;

/// A toy simulation whose state drifts every step (a random-walk field, the
/// profile of the paper's GTS checkpoint data).
struct Simulation {
    state: Vec<f64>,
    rng: u64,
}

impl Simulation {
    fn new(n: usize) -> Self {
        Self {
            state: DatasetId::GtsChkpZeon.generate(n),
            rng: 42,
        }
    }

    fn step(&mut self) {
        for v in self.state.iter_mut() {
            self.rng = self
                .rng
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let delta = (self.rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            *v += delta * 1e-3;
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.state.iter().flat_map(|v| v.to_le_bytes()).collect()
    }
}

fn main() {
    let elements = 1 << 20; // 8 MB of state
    let checkpoint_every = 3;
    let total_steps = 12;

    let mut sim = Simulation::new(elements);
    let compressor = PrimacyCompressor::new(PrimacyConfig::default());
    let mut store: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    let mut raw_bytes = 0usize;
    let mut stored_bytes = 0usize;

    println!("running {total_steps} steps, checkpoint every {checkpoint_every}...");
    for step in 1..=total_steps {
        sim.step();
        if step % checkpoint_every == 0 {
            let snapshot = sim.snapshot();
            let t0 = Instant::now();
            // Compress like the paper deploys it: each compute node handles
            // its own chunks; here worker threads stand in for nodes.
            let compressed = compressor
                .compress_bytes_parallel(&snapshot, 4)
                .expect("snapshot is aligned");
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "  step {step:>2}: checkpoint {} -> {} bytes (CR {:.3}) in {:.0} ms",
                snapshot.len(),
                compressed.len(),
                snapshot.len() as f64 / compressed.len() as f64,
                secs * 1e3
            );
            raw_bytes += snapshot.len();
            stored_bytes += compressed.len();
            store.insert(step, compressed);
        }
    }

    println!(
        "store holds {} checkpoints: {} bytes instead of {} ({:.1}% saved)",
        store.len(),
        stored_bytes,
        raw_bytes,
        (1.0 - stored_bytes as f64 / raw_bytes as f64) * 100.0
    );

    // Restart: recover the newest checkpoint and verify it matches the
    // simulation state at that step.
    let (&latest_step, compressed) = store.iter().next_back().expect("store not empty");
    let t0 = Instant::now();
    let restored = compressor
        .decompress_bytes(compressed)
        .expect("checkpoint must decompress");
    println!(
        "restart from step {latest_step}: {} bytes restored in {:.0} ms",
        restored.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(restored, sim.snapshot(), "restart state must be bit-exact");
    println!("restart state verified bit-exact");
}
